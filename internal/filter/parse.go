// Package filter compiles a subset of the tcpdump/libpcap filter expression
// language into classic BPF programs (see internal/bpf).
//
// The subset covers everything the thesis uses — in particular the
// Figure 6.5 measurement filter:
//
//	ether[6:4]=0x00000000 and ether[10]=0x00 and not tcp
//	and not ip src 10.11.12.13 and ... and not ip dst 190.99.12.31
//
// which must compile to the thesis's quoted size of 50 BPF instructions.
// The code generator therefore implements the two optimizations tcpdump's
// optimizer applies to this expression: redundant-load elimination along
// fall-through paths, and sharing of the EtherType guard across runs of
// IP-dependent predicates in a conjunction.
//
// Supported primitives:
//
//	ip | arp | tcp | udp | icmp
//	ip src A.B.C.D | ip dst A.B.C.D | ip host A.B.C.D
//	[src|dst] net A.B.C.D/len | [src|dst] net A.B.C.D mask M.M.M.M
//	[src|dst] port N
//	ether src aa:bb:cc:dd:ee:ff | ether dst aa:bb:cc:dd:ee:ff
//	ether[k] OP v | ether[k:n] OP v   (n ∈ 1,2,4; optional "& mask")
//	ip[k] OP v | ip[k:n] OP v
//	len OP v | greater N | less N
//	and, or, not (also &&, ||, !), parentheses
//
// with OP one of = == != > < >= <=.
package filter

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// node is the expression AST after parsing and negation normal form.
type node interface{ isNode() }

type andNode struct{ kids []node }
type orNode struct{ kids []node }
type notNode struct{ kid node }

// cmpOp is a comparison operator.
type cmpOp int

const (
	opEQ cmpOp = iota
	opNE
	opGT
	opGE
	opLT
	opLE
)

// cmpAtom is a load-mask-compare primitive at an absolute packet offset
// (or on the packet length).
type cmpAtom struct {
	neg     bool
	useLen  bool   // compare the packet length instead of a load
	size    int    // 1, 2, or 4 bytes
	off     uint32 // absolute frame offset
	mask    uint32 // 0 = no mask
	op      cmpOp
	val     uint32
	needsIP bool // predicate is only meaningful for IPv4 frames
}

// portAtom matches a TCP-or-UDP port, honouring variable IP header length
// and skipping fragments, exactly like tcpdump's "port" primitive.
type portAtom struct {
	neg      bool
	src, dst bool // which port fields to test (both for plain "port")
	port     uint32
}

func (andNode) isNode()  {}
func (orNode) isNode()   {}
func (notNode) isNode()  {}
func (cmpAtom) isNode()  {}
func (portAtom) isNode() {}

// Parse parses a filter expression into its AST.
func Parse(expr string) (node, error) {
	toks, err := lex(expr)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("filter: trailing tokens at %q", p.peek())
	}
	return nnf(n, false), nil
}

type token struct {
	kind string // "ident", "num", "addr", "punct"
	text string
	num  uint64
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case strings.ContainsRune("()[]:&|!=<>/", rune(c)):
			// multi-char operators
			two := ""
			if i+1 < len(s) {
				two = s[i : i+2]
			}
			switch two {
			case "&&", "||", "==", "!=", ">=", "<=":
				toks = append(toks, token{kind: "punct", text: two})
				i += 2
				continue
			}
			toks = append(toks, token{kind: "punct", text: string(c)})
			i++
		case c >= '0' && c <= '9':
			j := i
			dots := 0
			for j < len(s) && (isHexDigit(s[j]) || s[j] == 'x' || s[j] == 'X' || s[j] == '.') {
				if s[j] == '.' {
					dots++
				}
				j++
			}
			text := s[i:j]
			if dots == 3 {
				if _, err := netip.ParseAddr(text); err != nil {
					return nil, fmt.Errorf("filter: bad address %q", text)
				}
				toks = append(toks, token{kind: "addr", text: text})
			} else if dots > 0 {
				return nil, fmt.Errorf("filter: bad number %q", text)
			} else {
				v, err := strconv.ParseUint(text, 0, 32)
				if err != nil {
					// Bare hex like the "4a" in a MAC address.
					v, err = strconv.ParseUint(text, 16, 32)
					if err != nil {
						return nil, fmt.Errorf("filter: bad number %q", text)
					}
				}
				toks = append(toks, token{kind: "num", text: text, num: v})
			}
			i = j
		case isAlpha(c):
			j := i
			for j < len(s) && (isAlpha(s[j]) || s[j] >= '0' && s[j] <= '9') {
				j++
			}
			toks = append(toks, token{kind: "ident", text: s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("filter: unexpected character %q", string(c))
		}
	}
	return toks, nil
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }
func (p *parser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos].text
}
func (p *parser) accept(text string) bool {
	if !p.eof() && p.toks[p.pos].text == text {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("filter: expected %q, got %q", text, p.peek())
	}
	return nil
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []node{left}
	for p.accept("or") || p.accept("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return orNode{kids}, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []node{left}
	for p.accept("and") || p.accept("&&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return andNode{kids}, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.accept("not") || p.accept("!") {
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{kid}, nil
	}
	if p.accept("(") {
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return n, nil
	}
	return p.parsePrimitive()
}

// Frame offsets for IPv4-over-Ethernet, the only link layer in the testbed.
const (
	offEtherType = 12
	offIPStart   = 14
	offIPProto   = 14 + 9
	offIPFrag    = 14 + 6
	offIPSrc     = 14 + 12
	offIPDst     = 14 + 16
)

func (p *parser) parsePrimitive() (node, error) {
	if p.eof() {
		return nil, fmt.Errorf("filter: unexpected end of expression")
	}
	tok := p.toks[p.pos]
	if tok.kind != "ident" {
		return nil, fmt.Errorf("filter: unexpected token %q", tok.text)
	}
	p.pos++
	switch tok.text {
	case "ip":
		// ip[k...] OP v | ip src/dst/host A | bare ip
		if !p.eof() && p.peek() == "[" {
			return p.parseIndexCmp(offIPStart, true)
		}
		switch {
		case p.accept("src"):
			a, err := p.parseAddr()
			if err != nil {
				return nil, err
			}
			return cmpAtom{size: 4, off: offIPSrc, op: opEQ, val: a, needsIP: true}, nil
		case p.accept("dst"):
			a, err := p.parseAddr()
			if err != nil {
				return nil, err
			}
			return cmpAtom{size: 4, off: offIPDst, op: opEQ, val: a, needsIP: true}, nil
		case p.accept("host"):
			a, err := p.parseAddr()
			if err != nil {
				return nil, err
			}
			return orNode{[]node{
				cmpAtom{size: 4, off: offIPSrc, op: opEQ, val: a, needsIP: true},
				cmpAtom{size: 4, off: offIPDst, op: opEQ, val: a, needsIP: true},
			}}, nil
		case p.accept("proto"):
			if p.eof() || p.toks[p.pos].kind != "num" {
				return nil, fmt.Errorf("filter: ip proto needs a number")
			}
			v := uint32(p.toks[p.pos].num)
			p.pos++
			return cmpAtom{size: 1, off: offIPProto, op: opEQ, val: v, needsIP: true}, nil
		}
		return cmpAtom{size: 2, off: offEtherType, op: opEQ, val: 0x0800}, nil
	case "arp":
		return cmpAtom{size: 2, off: offEtherType, op: opEQ, val: 0x0806}, nil
	case "tcp":
		return cmpAtom{size: 1, off: offIPProto, op: opEQ, val: 6, needsIP: true}, nil
	case "udp":
		return cmpAtom{size: 1, off: offIPProto, op: opEQ, val: 17, needsIP: true}, nil
	case "icmp":
		return cmpAtom{size: 1, off: offIPProto, op: opEQ, val: 1, needsIP: true}, nil
	case "src", "dst":
		dir := tok.text
		switch {
		case p.accept("net"):
			return p.parseNet(dir)
		case p.accept("port"):
			n, err := p.parseNum()
			if err != nil {
				return nil, err
			}
			return portAtom{src: dir == "src", dst: dir == "dst", port: n}, nil
		case p.accept("host"):
			a, err := p.parseAddr()
			if err != nil {
				return nil, err
			}
			off := uint32(offIPSrc)
			if dir == "dst" {
				off = offIPDst
			}
			return cmpAtom{size: 4, off: off, op: opEQ, val: a, needsIP: true}, nil
		}
		return nil, fmt.Errorf("filter: %q must be followed by port or host", dir)
	case "port":
		n, err := p.parseNum()
		if err != nil {
			return nil, err
		}
		return portAtom{src: true, dst: true, port: n}, nil
	case "host":
		a, err := p.parseAddr()
		if err != nil {
			return nil, err
		}
		return orNode{[]node{
			cmpAtom{size: 4, off: offIPSrc, op: opEQ, val: a, needsIP: true},
			cmpAtom{size: 4, off: offIPDst, op: opEQ, val: a, needsIP: true},
		}}, nil
	case "net":
		return p.parseNet("")
	case "greater":
		v, err := p.parseNum()
		if err != nil {
			return nil, err
		}
		return cmpAtom{useLen: true, op: opGE, val: v}, nil
	case "less":
		v, err := p.parseNum()
		if err != nil {
			return nil, err
		}
		return cmpAtom{useLen: true, op: opLE, val: v}, nil
	case "ether":
		switch {
		case p.accept("src"):
			return p.parseEtherAddr(6)
		case p.accept("dst"):
			return p.parseEtherAddr(0)
		case p.peek() == "[":
			return p.parseIndexCmp(0, false)
		}
		return nil, fmt.Errorf("filter: ether must be followed by src, dst or [offset]")
	case "len":
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		v, err := p.parseNum()
		if err != nil {
			return nil, err
		}
		return cmpAtom{useLen: true, op: op, val: v}, nil
	}
	return nil, fmt.Errorf("filter: unknown primitive %q", tok.text)
}

// parseIndexCmp parses "[k]" or "[k:n]" plus "& mask"? OP value, producing a
// cmpAtom at base+k.
func (p *parser) parseIndexCmp(base uint32, needsIP bool) (node, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	off, err := p.parseNum()
	if err != nil {
		return nil, err
	}
	size := uint32(1)
	if p.accept(":") {
		size, err = p.parseNum()
		if err != nil {
			return nil, err
		}
		if size != 1 && size != 2 && size != 4 {
			return nil, fmt.Errorf("filter: access size must be 1, 2 or 4, got %d", size)
		}
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	var mask uint32
	if p.accept("&") {
		mask, err = p.parseNum()
		if err != nil {
			return nil, err
		}
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	val, err := p.parseNum()
	if err != nil {
		return nil, err
	}
	return cmpAtom{
		size: int(size), off: base + off, mask: mask,
		op: op, val: val, needsIP: needsIP,
	}, nil
}

func (p *parser) parseCmpOp() (cmpOp, error) {
	switch {
	case p.accept("="), p.accept("=="):
		return opEQ, nil
	case p.accept("!="):
		return opNE, nil
	case p.accept(">="):
		return opGE, nil
	case p.accept("<="):
		return opLE, nil
	case p.accept(">"):
		return opGT, nil
	case p.accept("<"):
		return opLT, nil
	}
	return 0, fmt.Errorf("filter: expected comparison operator, got %q", p.peek())
}

func (p *parser) parseNum() (uint32, error) {
	if p.eof() || p.toks[p.pos].kind != "num" {
		return 0, fmt.Errorf("filter: expected number, got %q", p.peek())
	}
	v := uint32(p.toks[p.pos].num)
	p.pos++
	return v, nil
}

func (p *parser) parseAddr() (uint32, error) {
	if p.eof() || p.toks[p.pos].kind != "addr" {
		return 0, fmt.Errorf("filter: expected IPv4 address, got %q", p.peek())
	}
	a := netip.MustParseAddr(p.toks[p.pos].text).As4()
	p.pos++
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3]), nil
}

// nnf pushes negations down to the atoms (negation normal form), which
// lets the code generator treat the tree as pure and/or over possibly
// negated atoms.
func nnf(n node, neg bool) node {
	switch v := n.(type) {
	case notNode:
		return nnf(v.kid, !neg)
	case andNode:
		kids := make([]node, len(v.kids))
		for i, k := range v.kids {
			kids[i] = nnf(k, neg)
		}
		if neg {
			return orNode{kids}
		}
		return andNode{kids}
	case orNode:
		kids := make([]node, len(v.kids))
		for i, k := range v.kids {
			kids[i] = nnf(k, neg)
		}
		if neg {
			return andNode{kids}
		}
		return orNode{kids}
	case cmpAtom:
		v.neg = v.neg != neg
		return v
	case portAtom:
		v.neg = v.neg != neg
		return v
	}
	panic("filter: unknown node type")
}

// parseNet parses "A.B.C.D/len" or "A.B.C.D mask M.M.M.M" after the "net"
// keyword; dir is "src", "dst" or "" (either direction).
func (p *parser) parseNet(dir string) (node, error) {
	addr, err := p.parseAddr()
	if err != nil {
		return nil, err
	}
	mask := uint32(0xffffffff)
	switch {
	case p.accept("/"):
		bits, err := p.parseNum()
		if err != nil {
			return nil, err
		}
		if bits > 32 {
			return nil, fmt.Errorf("filter: prefix length %d out of range", bits)
		}
		if bits == 0 {
			mask = 0
		} else {
			mask = ^uint32(0) << (32 - bits)
		}
	case p.accept("mask"):
		mask, err = p.parseAddr()
		if err != nil {
			return nil, err
		}
	}
	if mask == 0 {
		// A /0 net matches every IPv4 packet; a zero mask would otherwise
		// collide with cmpAtom's "no mask" encoding.
		return cmpAtom{size: 2, off: offEtherType, op: opEQ, val: 0x0800}, nil
	}
	mk := func(off uint32) node {
		return cmpAtom{size: 4, off: off, mask: mask, op: opEQ, val: addr & mask, needsIP: true}
	}
	switch dir {
	case "src":
		return mk(offIPSrc), nil
	case "dst":
		return mk(offIPDst), nil
	}
	return orNode{[]node{mk(offIPSrc), mk(offIPDst)}}, nil
}

// parseEtherAddr parses a colon-separated MAC and compares the 6 bytes at
// the given frame offset (0 = destination, 6 = source) as a 4-byte and a
// 2-byte load.
func (p *parser) parseEtherAddr(off uint32) (node, error) {
	var bytes [6]uint64
	for i := 0; i < 6; i++ {
		if i > 0 {
			if err := p.expect(":"); err != nil {
				return nil, err
			}
		}
		if p.eof() {
			return nil, fmt.Errorf("filter: truncated MAC address")
		}
		tok := p.toks[p.pos]
		v, err := strconv.ParseUint(tok.text, 16, 8)
		if err != nil {
			return nil, fmt.Errorf("filter: bad MAC byte %q", tok.text)
		}
		bytes[i] = v
		p.pos++
	}
	hi := uint32(bytes[0])<<24 | uint32(bytes[1])<<16 | uint32(bytes[2])<<8 | uint32(bytes[3])
	lo := uint32(bytes[4])<<8 | uint32(bytes[5])
	return andNode{[]node{
		cmpAtom{size: 4, off: off, op: opEQ, val: hi},
		cmpAtom{size: 2, off: off + 4, op: opEQ, val: lo},
	}}, nil
}
