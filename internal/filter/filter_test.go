package filter

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
)

func genFrame(t testing.TB, frameLen int, srcMACLastByte byte) []byte {
	if t != nil {
		t.Helper()
	}
	return pkt.BuildUDP(nil, pkt.UDPSpec{
		SrcMAC:  pkt.MAC{0, 0, 0, 0, 0, srcMACLastByte},
		DstMAC:  pkt.MAC{0x00, 0x0e, 0x0c, 0x01, 0x02, 0x03},
		SrcIP:   netip.MustParseAddr("192.168.10.100"),
		DstIP:   netip.MustParseAddr("192.168.10.12"),
		SrcPort: 9, DstPort: 9,
		FrameLen: frameLen,
	})
}

func tcpFrame(src, dst string, srcPort, dstPort uint16) []byte {
	b := make([]byte, 54)
	pkt.EncodeEthernet(b, pkt.Ethernet{EtherType: pkt.EtherTypeIPv4})
	s, d := netip.MustParseAddr(src), netip.MustParseAddr(dst)
	pkt.EncodeIPv4(b[14:], pkt.IPv4{Length: 40, TTL: 64, Protocol: pkt.ProtoTCP, Src: s, Dst: d})
	pkt.EncodeTCP(b[34:], pkt.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: pkt.TCPFlagACK}, s, d, nil, true)
	return b
}

func mustAccept(t *testing.T, expr string, frame []byte) {
	t.Helper()
	prog := MustCompile(expr, 65535)
	res, err := prog.Run(frame)
	if err != nil {
		t.Fatalf("%q: %v", expr, err)
	}
	if res.Accept == 0 {
		t.Fatalf("%q rejected frame, want accept\nprogram:\n%s", expr, prog)
	}
}

func mustReject(t *testing.T, expr string, frame []byte) {
	t.Helper()
	prog := MustCompile(expr, 65535)
	res, err := prog.Run(frame)
	if err != nil {
		t.Fatalf("%q: %v", expr, err)
	}
	if res.Accept != 0 {
		t.Fatalf("%q accepted frame, want reject\nprogram:\n%s", expr, prog)
	}
}

func TestPrimitives(t *testing.T) {
	udp := genFrame(t, 200, 0)
	tcp := tcpFrame("10.0.0.1", "10.0.0.2", 80, 4242)
	arp := make([]byte, 60)
	pkt.EncodeEthernet(arp, pkt.Ethernet{EtherType: pkt.EtherTypeARP})

	mustAccept(t, "ip", udp)
	mustAccept(t, "ip", tcp)
	mustReject(t, "ip", arp)
	mustAccept(t, "arp", arp)
	mustAccept(t, "udp", udp)
	mustReject(t, "udp", tcp)
	mustAccept(t, "tcp", tcp)
	mustReject(t, "tcp", udp)
	mustReject(t, "tcp", arp)
	mustAccept(t, "not tcp", udp)
	mustAccept(t, "not tcp", arp) // non-IP is vacuously not tcp
	mustReject(t, "not tcp", tcp)
	mustAccept(t, "ip proto 17", udp)
	mustReject(t, "ip proto 17", tcp)
}

func TestHostAndDirection(t *testing.T) {
	tcp := tcpFrame("10.0.0.1", "10.0.0.2", 80, 4242)
	mustAccept(t, "ip src 10.0.0.1", tcp)
	mustReject(t, "ip src 10.0.0.2", tcp)
	mustAccept(t, "ip dst 10.0.0.2", tcp)
	mustReject(t, "ip dst 10.0.0.1", tcp)
	mustAccept(t, "ip host 10.0.0.1", tcp)
	mustAccept(t, "ip host 10.0.0.2", tcp)
	mustReject(t, "ip host 10.0.0.3", tcp)
	mustAccept(t, "host 10.0.0.1", tcp)
	mustAccept(t, "src host 10.0.0.1", tcp)
	mustReject(t, "dst host 10.0.0.1", tcp)
}

func TestPorts(t *testing.T) {
	udp := genFrame(t, 100, 0) // ports 9/9
	tcp := tcpFrame("10.0.0.1", "10.0.0.2", 80, 4242)
	mustAccept(t, "port 9", udp)
	mustReject(t, "port 10", udp)
	mustAccept(t, "src port 80", tcp)
	mustReject(t, "dst port 80", tcp)
	mustAccept(t, "dst port 4242", tcp)
	mustAccept(t, "port 80", tcp)
	mustAccept(t, "port 4242", tcp)
	mustReject(t, "not port 9", udp)
	mustAccept(t, "not port 10", udp)
}

func TestPortSkipsFragments(t *testing.T) {
	frag := genFrame(t, 100, 0)
	// Set a nonzero fragment offset and fix the IP checksum.
	s := netip.MustParseAddr("192.168.10.100")
	d := netip.MustParseAddr("192.168.10.12")
	pkt.EncodeIPv4(frag[14:], pkt.IPv4{
		Length: uint16(len(frag) - 14), TTL: 32, Protocol: pkt.ProtoUDP,
		Src: s, Dst: d, FragOffset: 100,
	})
	mustReject(t, "port 9", frag)
}

func TestEtherIndex(t *testing.T) {
	f := genFrame(t, 100, 2)
	mustAccept(t, "ether[6:4]=0x00000000", f)
	mustAccept(t, "ether[10]=0x00", f)
	mustAccept(t, "ether[11]=0x02", f)
	mustReject(t, "ether[11]=0x01", f)
	mustAccept(t, "ether[12:2]=0x800", f)
	mustAccept(t, "ether[0] & 0x01 = 0", f) // not multicast
	mustReject(t, "ether[0] & 0x01 != 0", f)
}

func TestIPIndexAndLen(t *testing.T) {
	f := genFrame(t, 200, 0)
	mustAccept(t, "ip[9] = 17", f)    // protocol field
	mustAccept(t, "ip[2:2] = 186", f) // total length 200-14
	mustAccept(t, "len = 200", f)
	mustAccept(t, "len >= 200", f)
	mustAccept(t, "len <= 200", f)
	mustReject(t, "len > 200", f)
	mustReject(t, "len < 200", f)
	mustAccept(t, "len != 100", f)
}

func TestBooleanStructure(t *testing.T) {
	udp := genFrame(t, 100, 0)
	tcp := tcpFrame("10.0.0.1", "10.0.0.2", 80, 4242)
	mustAccept(t, "udp or tcp", udp)
	mustAccept(t, "udp or tcp", tcp)
	mustReject(t, "udp and tcp", udp)
	mustAccept(t, "not (udp and tcp)", udp)
	mustAccept(t, "(udp or tcp) and ip host 10.0.0.1", tcp)
	mustReject(t, "(udp or tcp) and ip host 99.0.0.1", tcp)
	mustAccept(t, "udp && !tcp", udp)
	mustAccept(t, "tcp || arp", tcp)
}

func TestEmptyFilterAcceptsAll(t *testing.T) {
	prog := MustCompile("", 96)
	res, err := prog.Run(genFrame(t, 100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 96 {
		t.Fatalf("accept = %d, want snaplen 96", res.Accept)
	}
	if len(prog) != 1 {
		t.Fatalf("program length = %d, want 1", len(prog))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus",
		"ip src",
		"ip src 1.2.3",
		"port",
		"ether[]=1",
		"ether[4:3]=1",
		"len ~ 4",
		"(udp",
		"udp)",
		"udp and",
		"ip src 300.1.2.3",
	}
	for _, expr := range bad {
		if _, err := Compile(expr, 0); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

// TestReferenceFilterInstructionCount pins the headline property from the
// thesis: the Figure 6.5 filter compiles to exactly 50 BPF instructions.
func TestReferenceFilterInstructionCount(t *testing.T) {
	prog, err := Compile(ReferenceFilterExpr, 1515)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 50 {
		t.Fatalf("reference filter compiled to %d instructions, want 50\n%s", len(prog), prog)
	}
}

// TestReferenceFilterAcceptsGeneratedTraffic pins the second property: the
// filter accepts every generated packet, and only after evaluating the
// whole program (all instructions except the final reject).
func TestReferenceFilterAcceptsGeneratedTraffic(t *testing.T) {
	prog := MustCompile(ReferenceFilterExpr, 1515)
	for mac := byte(0); mac <= 2; mac++ {
		for _, size := range []int{46, 100, 576, 1514} {
			f := genFrame(t, size, mac)
			res, err := prog.Run(f)
			if err != nil {
				t.Fatal(err)
			}
			if res.Accept == 0 {
				t.Fatalf("reference filter rejected generated frame (mac %d, size %d)", mac, size)
			}
			if res.Instructions != len(prog)-1 {
				t.Fatalf("executed %d instructions, want %d (all but the reject)",
					res.Instructions, len(prog)-1)
			}
		}
	}
}

func TestReferenceFilterRejectsListedAddresses(t *testing.T) {
	prog := MustCompile(ReferenceFilterExpr, 1515)
	rejects := [][2]string{
		{"10.11.12.13", "1.1.1.1"},
		{"190.11.12.31", "1.1.1.1"},
		{"1.1.1.1", "10.99.12.13"},
		{"1.1.1.1", "190.99.12.31"},
	}
	for _, r := range rejects {
		f := pkt.BuildUDP(nil, pkt.UDPSpec{
			SrcIP: netip.MustParseAddr(r[0]), DstIP: netip.MustParseAddr(r[1]),
			FrameLen: 100,
		})
		res, err := prog.Run(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accept != 0 {
			t.Fatalf("filter accepted src %s dst %s, want reject", r[0], r[1])
		}
	}
	// TCP packets are rejected by the "not tcp" conjunct.
	res, err := prog.Run(tcpFrame("1.1.1.1", "2.2.2.2", 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept != 0 {
		t.Fatal("filter accepted a TCP packet")
	}
}

// Property: De Morgan — "not (A and B)" and "(not A) or (not B)" accept the
// same packets for primitive A, B over arbitrary generated frames.
func TestDeMorganProperty(t *testing.T) {
	p1 := MustCompile("not (udp and ip host 192.168.10.12)", 65535)
	p2 := MustCompile("(not udp) or (not ip host 192.168.10.12)", 65535)
	f := func(size uint16, mac byte, useTCP bool) bool {
		var frame []byte
		if useTCP {
			frame = tcpFrame("192.168.10.12", "10.0.0.1", 80, 81)
		} else {
			frame = genFrame(nil, 46+int(size)%1400, mac)
		}
		r1, err1 := p1.Run(frame)
		r2, err2 := p2.Run(frame)
		if err1 != nil || err2 != nil {
			return false
		}
		return (r1.Accept == 0) == (r2.Accept == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a filter and its negation partition all packets.
func TestNegationPartitionProperty(t *testing.T) {
	exprs := []string{"udp", "tcp", "ip host 192.168.10.12", "len > 500", "port 9"}
	for _, e := range exprs {
		p := MustCompile(e, 65535)
		np := MustCompile("not ("+e+")", 65535)
		f := func(size uint16, mac byte) bool {
			frame := genFrame(nil, 46+int(size)%1400, mac)
			r1, _ := p.Run(frame)
			r2, _ := np.Run(frame)
			return (r1.Accept == 0) != (r2.Accept == 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
	}
}

func TestNetPrimitives(t *testing.T) {
	tcp := tcpFrame("10.1.2.3", "192.168.10.12", 80, 81)
	mustAccept(t, "net 10.0.0.0/8", tcp)
	mustAccept(t, "src net 10.0.0.0/8", tcp)
	mustReject(t, "dst net 10.0.0.0/8", tcp)
	mustAccept(t, "dst net 192.168.10.0/24", tcp)
	mustAccept(t, "net 10.0.0.0 mask 255.0.0.0", tcp)
	mustReject(t, "net 11.0.0.0/8", tcp)
	mustAccept(t, "net 0.0.0.0/0", tcp) // matches any IP
	arp := make([]byte, 60)
	pkt.EncodeEthernet(arp, pkt.Ethernet{EtherType: pkt.EtherTypeARP})
	mustReject(t, "net 0.0.0.0/0", arp) // but not non-IP
	if _, err := Compile("net 10.0.0.0/33", 0); err == nil {
		t.Fatal("prefix 33 accepted")
	}
}

func TestGreaterLess(t *testing.T) {
	f := genFrame(t, 500, 0)
	mustAccept(t, "greater 500", f)
	mustAccept(t, "greater 100", f)
	mustReject(t, "greater 501", f)
	mustAccept(t, "less 500", f)
	mustReject(t, "less 499", f)
}

func TestEtherAddr(t *testing.T) {
	f := genFrame(t, 100, 2) // src MAC 00:00:00:00:00:02
	mustAccept(t, "ether src 00:00:00:00:00:02", f)
	mustReject(t, "ether src 00:00:00:00:00:01", f)
	mustAccept(t, "ether dst 00:0e:0c:01:02:03", f)
	mustReject(t, "ether dst 00:0e:0c:01:02:04", f)
	mustAccept(t, "ether src 00:00:00:00:00:02 and udp", f)
	// Mixed-hex bytes must lex correctly.
	b := genFrame(t, 100, 0)
	copy(b[0:6], []byte{0x4a, 0xde, 0xad, 0xbe, 0xef, 0x99})
	mustAccept(t, "ether dst 4a:de:ad:be:ef:99", b)
	if _, err := Compile("ether src 00:00:00", 0); err == nil {
		t.Fatal("truncated MAC accepted")
	}
	if _, err := Compile("ether src zz:00:00:00:00:00", 0); err == nil {
		t.Fatal("bad MAC byte accepted")
	}
}
