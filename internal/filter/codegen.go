package filter

import (
	"fmt"

	"repro/internal/bpf"
)

// Compile parses and compiles a filter expression into a BPF program.
// Accepted packets return snaplen (the number of bytes to capture);
// rejected packets return 0. An empty expression compiles to an
// accept-everything program, matching libpcap.
func Compile(expr string, snaplen uint32) (bpf.Program, error) {
	if snaplen == 0 {
		snaplen = 65535
	}
	trimmed := expr
	for len(trimmed) > 0 && (trimmed[0] == ' ' || trimmed[0] == '\t') {
		trimmed = trimmed[1:]
	}
	if trimmed == "" {
		return bpf.Program{bpf.RetConst(snaplen)}, nil
	}
	root, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	g := &gen{snaplen: snaplen}
	lt, lf := g.newLabel(), g.newLabel()
	g.node(root, lt, lf)
	g.bind(lt)
	g.emitPlain(bpf.RetConst(snaplen))
	g.bind(lf)
	g.emitPlain(bpf.RetConst(0))
	prog, err := g.resolve()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("filter: generated invalid program: %w", err)
	}
	return prog, nil
}

// MustCompile is Compile for tests and fixed expressions; it panics on error.
func MustCompile(expr string, snaplen uint32) bpf.Program {
	p, err := Compile(expr, snaplen)
	if err != nil {
		panic(err)
	}
	return p
}

// gInstr is an instruction whose jump targets may still be symbolic labels.
type gInstr struct {
	ins          bpf.Instruction
	isCond       bool
	isJA         bool
	jtLbl, jfLbl int
	jaLbl        int
}

type labelState struct {
	bound bool
	pos   int
	refs  []int // instruction indices that reference this label
}

// loadState tracks what the accumulator holds along the current
// fall-through path, enabling redundant-load elimination: tcpdump's
// optimizer does the same, and the thesis's 50-instruction figure for the
// reference filter depends on it.
type loadState struct {
	valid  bool
	useLen bool
	size   int
	off    uint32
	mask   uint32
}

type gen struct {
	snaplen uint32
	instrs  []gInstr
	labels  []labelState
	cur     loadState
}

func (g *gen) newLabel() int {
	g.labels = append(g.labels, labelState{})
	return len(g.labels) - 1
}

// bind fixes a label at the next instruction position. If any reference to
// the label came from an instruction other than the immediately preceding
// one, control may arrive here from afar and the tracked accumulator state
// is invalidated.
func (g *gen) bind(l int) {
	st := &g.labels[l]
	if st.bound {
		panic("filter: label bound twice")
	}
	st.bound = true
	st.pos = len(g.instrs)
	for _, r := range st.refs {
		if r < len(g.instrs)-1 {
			g.cur = loadState{}
			break
		}
	}
}

func (g *gen) emitPlain(ins bpf.Instruction) {
	g.instrs = append(g.instrs, gInstr{ins: ins})
}

func (g *gen) emitCond(op uint16, k uint32, jt, jf int) {
	idx := len(g.instrs)
	g.labels[jt].refs = append(g.labels[jt].refs, idx)
	g.labels[jf].refs = append(g.labels[jf].refs, idx)
	g.instrs = append(g.instrs, gInstr{
		ins:    bpf.Instruction{Op: bpf.ClassJMP | op | bpf.SrcK, K: k},
		isCond: true, jtLbl: jt, jfLbl: jf,
	})
}

// emitAbsLoad loads (size, off) into A unless A already holds exactly that
// value along every path reaching this point.
func (g *gen) emitAbsLoad(size int, off uint32, mask uint32) {
	want := loadState{valid: true, size: size, off: off, mask: mask}
	if g.cur == want {
		return
	}
	var sz uint16
	switch size {
	case 1:
		sz = bpf.SizeB
	case 2:
		sz = bpf.SizeH
	default:
		sz = bpf.SizeW
	}
	g.emitPlain(bpf.LoadAbs(sz, off))
	if mask != 0 {
		g.emitPlain(bpf.ALUOpK(bpf.ALUAnd, mask))
	}
	g.cur = want
}

func (g *gen) emitLenLoad() {
	want := loadState{valid: true, useLen: true}
	if g.cur == want {
		return
	}
	g.emitPlain(bpf.LoadLen())
	g.cur = want
}

// node generates code for n, jumping to label t if the expression is true
// and f otherwise.
func (g *gen) node(n node, t, f int) {
	switch v := n.(type) {
	case orNode:
		for i, kid := range v.kids {
			if i == len(v.kids)-1 {
				g.node(kid, t, f)
				break
			}
			next := g.newLabel()
			g.node(kid, t, next)
			g.bind(next)
		}
	case andNode:
		g.andChain(v.kids, t, f)
	case cmpAtom:
		at, af := t, f
		if v.neg {
			at, af = f, t
		}
		if v.needsIP {
			inner := g.newLabel()
			g.emitAbsLoad(2, offEtherType, 0)
			g.emitCond(bpf.JmpJEQ, 0x0800, inner, af)
			g.bind(inner)
		}
		g.cmpInner(v, at, af)
	case portAtom:
		g.port(v, t, f)
	default:
		panic("filter: unexpected node in codegen")
	}
}

// andChain generates an and-list. Consecutive IP-dependent cmpAtoms share a
// single EtherType guard: for IPv4 frames the inner comparisons run; for
// non-IPv4 frames the conjunction of the run is true iff every atom in the
// run is negated (a negated IP predicate holds vacuously for non-IP).
func (g *gen) andChain(kids []node, t, f int) {
	i := 0
	for i < len(kids) {
		last := i == len(kids)-1
		// Find a maximal run of groupable atoms starting at i.
		j := i
		for j < len(kids) {
			if a, ok := kids[j].(cmpAtom); ok && a.needsIP {
				j++
				continue
			}
			break
		}
		if j-i >= 1 {
			runIsTail := j == len(kids)
			afterRun := t
			if !runIsTail {
				afterRun = g.newLabel()
			}
			allNeg := true
			for k := i; k < j; k++ {
				if !kids[k].(cmpAtom).neg {
					allNeg = false
					break
				}
			}
			nonIPTarget := f
			if allNeg {
				nonIPTarget = afterRun
			}
			inner := g.newLabel()
			g.emitAbsLoad(2, offEtherType, 0)
			g.emitCond(bpf.JmpJEQ, 0x0800, inner, nonIPTarget)
			g.bind(inner)
			for k := i; k < j; k++ {
				a := kids[k].(cmpAtom)
				cont := afterRun
				if k < j-1 {
					cont = g.newLabel()
				}
				at, ft := cont, f
				if a.neg {
					// Raw match means the negated predicate fails.
					at, ft = f, cont
				}
				g.cmpInner(a, at, ft)
				if k < j-1 {
					g.bind(cont)
				}
			}
			if !runIsTail {
				g.bind(afterRun)
			}
			i = j
			continue
		}
		// Non-groupable child.
		if last {
			g.node(kids[i], t, f)
		} else {
			next := g.newLabel()
			g.node(kids[i], next, f)
			g.bind(next)
		}
		i++
	}
}

// cmpInner emits the load and comparison of a cmpAtom without any IP guard.
// t and f are the final targets (negation already applied by the caller).
func (g *gen) cmpInner(a cmpAtom, t, f int) {
	if a.useLen {
		g.emitLenLoad()
	} else {
		g.emitAbsLoad(a.size, a.off, a.mask)
	}
	switch a.op {
	case opEQ:
		g.emitCond(bpf.JmpJEQ, a.val, t, f)
	case opNE:
		g.emitCond(bpf.JmpJEQ, a.val, f, t)
	case opGT:
		g.emitCond(bpf.JmpJGT, a.val, t, f)
	case opGE:
		g.emitCond(bpf.JmpJGE, a.val, t, f)
	case opLT:
		g.emitCond(bpf.JmpJGE, a.val, f, t)
	case opLE:
		g.emitCond(bpf.JmpJGT, a.val, f, t)
	}
}

// port emits the tcpdump "port" idiom: IPv4, protocol TCP or UDP, not a
// fragment, then compare the requested port field(s) at the variable
// transport-header offset via the X register.
func (g *gen) port(a portAtom, t, f int) {
	if a.neg {
		t, f = f, t
	}
	inner := g.newLabel()
	g.emitAbsLoad(2, offEtherType, 0)
	g.emitCond(bpf.JmpJEQ, 0x0800, inner, f)
	g.bind(inner)

	g.emitAbsLoad(1, offIPProto, 0)
	isPort := g.newLabel()
	tryTCP := g.newLabel()
	g.emitCond(bpf.JmpJEQ, 17, isPort, tryTCP)
	g.bind(tryTCP)
	g.emitCond(bpf.JmpJEQ, 6, isPort, f)
	g.bind(isPort)

	noFrag := g.newLabel()
	g.emitAbsLoad(2, offIPFrag, 0x1fff)
	g.emitCond(bpf.JmpJEQ, 0, noFrag, f)
	g.bind(noFrag)

	g.emitPlain(bpf.LoadMSHX(offIPStart))
	g.cur = loadState{} // X changed; indirect loads are never cached anyway
	if a.src {
		ft := f
		if a.dst {
			ft = g.newLabel()
		}
		g.emitPlain(bpf.LoadInd(bpf.SizeH, offIPStart))
		g.cur = loadState{}
		g.emitCond(bpf.JmpJEQ, a.port, t, ft)
		if a.dst {
			g.bind(ft)
		}
	}
	if a.dst {
		g.emitPlain(bpf.LoadInd(bpf.SizeH, offIPStart+2))
		g.cur = loadState{}
		g.emitCond(bpf.JmpJEQ, a.port, t, f)
	}
}

// resolve turns symbolic labels into the classic relative jump offsets.
func (g *gen) resolve() (bpf.Program, error) {
	prog := make(bpf.Program, len(g.instrs))
	for i, gi := range g.instrs {
		ins := gi.ins
		if gi.isCond {
			jt, err := g.offset(i, gi.jtLbl)
			if err != nil {
				return nil, err
			}
			jf, err := g.offset(i, gi.jfLbl)
			if err != nil {
				return nil, err
			}
			ins.Jt, ins.Jf = jt, jf
		} else if gi.isJA {
			st := g.labels[gi.jaLbl]
			if !st.bound || st.pos <= i {
				return nil, fmt.Errorf("filter: unbound or backward ja target")
			}
			ins.K = uint32(st.pos - i - 1)
		}
		prog[i] = ins
	}
	return prog, nil
}

func (g *gen) offset(from, lbl int) (uint8, error) {
	st := g.labels[lbl]
	if !st.bound {
		return 0, fmt.Errorf("filter: unbound label")
	}
	d := st.pos - from - 1
	if d < 0 {
		return 0, fmt.Errorf("filter: backward jump")
	}
	if d > 255 {
		return 0, fmt.Errorf("filter: expression too complex (jump offset %d > 255)", d)
	}
	return uint8(d), nil
}
