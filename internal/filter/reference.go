package filter

// ReferenceFilterExpr is the measurement filter of thesis Figure 6.5. It is
// constructed so that every generated packet is accepted, but only after
// every comparison has been evaluated; compiled (with tcpdump's standard
// optimizations) it is 50 BPF instructions long, the number the thesis
// quotes.
//
// The thesis listing contains the literal address "990.99.12.23", which is
// not a valid IPv4 address (an artifact of the original document); this
// constant uses 110.99.12.23, which keeps the address count, the
// instruction count and the all-packets-accepted property intact.
const ReferenceFilterExpr = "ether[6:4]=0x00000000 and ether[10]=0x00 and not tcp" +
	" and not ip src 10.11.12.13 and not ip src 20.11.12.14" +
	" and not ip src 30.11.12.15 and not ip src 40.11.12.16" +
	" and not ip src 50.11.12.17 and not ip src 60.11.12.18" +
	" and not ip src 70.11.12.19 and not ip src 80.11.12.20" +
	" and not ip src 90.11.12.21 and not ip src 100.11.12.22" +
	" and not ip src 110.11.12.23 and not ip src 120.11.12.24" +
	" and not ip src 130.11.12.25 and not ip src 140.11.12.26" +
	" and not ip src 150.11.12.27 and not ip src 160.11.12.28" +
	" and not ip src 170.11.12.29 and not ip src 180.11.12.30" +
	" and not ip src 190.11.12.31" +
	" and not ip dst 10.99.12.13 and not ip dst 20.99.12.14" +
	" and not ip dst 30.99.12.15 and not ip dst 40.99.12.16" +
	" and not ip dst 50.99.12.17 and not ip dst 60.99.12.18" +
	" and not ip dst 70.99.12.19 and not ip dst 80.99.12.20" +
	" and not ip dst 90.99.12.21 and not ip dst 100.99.12.22" +
	" and not ip dst 110.99.12.23 and not ip dst 120.99.12.24" +
	" and not ip dst 130.99.12.25 and not ip dst 140.99.12.26" +
	" and not ip dst 150.99.12.27 and not ip dst 160.99.12.28" +
	" and not ip dst 170.99.12.29 and not ip dst 180.99.12.30" +
	" and not ip dst 190.99.12.31"
