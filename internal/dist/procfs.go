package dist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteProcfs emits the distribution in the procfs exchange format of
// §A.2.2:
//
//	dist <precision> <hist_width> <max_pktsize> <num_outliers> <num_bins>
//	outl <size> <cells>      (num_outliers lines)
//	hist <size> <cells>      (num_bins lines)
//
// With pgset=true each line is wrapped as `pgset "..."`, matching the -s
// option of createDist ("useful when using the output with the script
// supplied in pktgen.txt").
func WriteProcfs(w io.Writer, d *Distribution, pgset bool) error {
	emit := func(line string) error {
		if pgset {
			_, err := fmt.Fprintf(w, "pgset %q\n", line)
			return err
		}
		_, err := fmt.Fprintln(w, line)
		return err
	}
	p := d.Params
	if err := emit(fmt.Sprintf("dist %d %d %d %d %d",
		p.Precision, p.BinSize, p.MaxSize, len(d.Outliers), len(d.Bins))); err != nil {
		return err
	}
	for _, e := range d.Outliers {
		if err := emit(fmt.Sprintf("outl %d %d", e.Size, e.Cells)); err != nil {
			return err
		}
	}
	for _, e := range d.Bins {
		if err := emit(fmt.Sprintf("hist %d %d", e.Size, e.Cells)); err != nil {
			return err
		}
	}
	return nil
}

// ParseProcfs reads a distribution in the procfs format (pgset-wrapped
// lines are unwrapped transparently).
func ParseProcfs(r io.Reader) (*Distribution, error) {
	sc := bufio.NewScanner(r)
	var params Params
	var outliers, bins []Entry
	wantOutl, wantBins := -1, -1
	sawDist := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "pgset") {
			line = strings.TrimSpace(strings.TrimPrefix(line, "pgset"))
			line = strings.Trim(line, `"`)
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "dist":
			if len(fields) != 6 {
				return nil, fmt.Errorf("dist: bad dist line %q", line)
			}
			vals, err := atoiAll(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("dist: bad dist line %q: %v", line, err)
			}
			params = Params{Precision: vals[0], BinSize: vals[1], MaxSize: vals[2]}
			wantOutl, wantBins = vals[3], vals[4]
			sawDist = true
		case "outl", "hist":
			if !sawDist {
				return nil, fmt.Errorf("dist: %s before dist line", fields[0])
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dist: bad %s line %q", fields[0], line)
			}
			vals, err := atoiAll(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("dist: bad %s line %q: %v", fields[0], line, err)
			}
			e := Entry{Size: vals[0], Cells: vals[1]}
			if fields[0] == "outl" {
				outliers = append(outliers, e)
			} else {
				bins = append(bins, e)
			}
		default:
			return nil, fmt.Errorf("dist: unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawDist {
		return nil, fmt.Errorf("dist: missing dist line")
	}
	if wantOutl != len(outliers) || wantBins != len(bins) {
		return nil, fmt.Errorf("dist: header promised %d outl / %d hist lines, got %d / %d",
			wantOutl, wantBins, len(outliers), len(bins))
	}
	return FromEntries(params, outliers, bins)
}

func atoiAll(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
