package dist

import (
	"fmt"
	"sort"
)

// Counts accumulates how many packets of each size were seen. The zero
// value is ready to use.
type Counts struct {
	c     map[int]uint64
	total uint64
}

// Add records n packets of the given size.
func (c *Counts) Add(size int, n uint64) {
	if size < 0 {
		return
	}
	if c.c == nil {
		c.c = make(map[int]uint64)
	}
	c.c[size] += n
	c.total += n
}

// Total returns the number of recorded packets.
func (c *Counts) Total() uint64 { return c.total }

// Get returns the count for one size.
func (c *Counts) Get(size int) uint64 { return c.c[size] }

// Sizes returns the distinct sizes in ascending order.
func (c *Counts) Sizes() []int {
	out := make([]int, 0, len(c.c))
	for s := range c.c {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Mean returns the average packet size.
func (c *Counts) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	var sum float64
	for s, n := range c.c {
		sum += float64(s) * float64(n)
	}
	return sum / float64(c.total)
}

// Fraction returns count(size)/total (Equation 4.1).
func (c *Counts) Fraction(size int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.c[size]) / float64(c.total)
}

// SizeShare is one row of the Figure 4.2 histogram.
type SizeShare struct {
	Size       int
	Count      uint64
	Fraction   float64 // share of all packets
	Cumulative float64 // running sum in descending-share order
}

// TopShares returns the n most frequent sizes in descending share order
// with cumulative fractions, plus the share of the remainder ("rest" in
// Figure 4.2). n <= 0 returns all sizes.
func (c *Counts) TopShares(n int) (top []SizeShare, rest float64) {
	type kv struct {
		size  int
		count uint64
	}
	all := make([]kv, 0, len(c.c))
	for s, cnt := range c.c {
		all = append(all, kv{s, cnt})
	}
	// Descending by count; ascending size breaks ties deterministically.
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].size < all[j].size
	})
	if n <= 0 || n > len(all) {
		n = len(all)
	}
	cum := 0.0
	for _, e := range all[:n] {
		f := float64(e.count) / float64(c.total)
		cum += f
		top = append(top, SizeShare{Size: e.size, Count: e.count, Fraction: f, Cumulative: cum})
	}
	return top, 1 - cum
}

// Validate checks the invariant between the per-size counts and the total.
func (c *Counts) Validate() error {
	var sum uint64
	for _, n := range c.c {
		sum += n
	}
	if sum != c.total {
		return fmt.Errorf("dist: count total %d != sum %d", c.total, sum)
	}
	return nil
}
