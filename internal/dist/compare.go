package dist

import "math"

// Comparison quantifies how closely a generated size distribution matches
// its input — the question §4.3.1 answers visually with Figure 4.3.
type Comparison struct {
	// TotalVariation is ½·Σ|p_i − q_i| over all sizes: the largest
	// probability mass any event can differ by. 0 = identical, 1 = disjoint.
	TotalVariation float64
	// ChiSquare is Σ (o_i − e_i)²/e_i with expected counts from the
	// reference scaled to the observed total (sizes with zero expectation
	// and nonzero observation contribute their observed count).
	ChiSquare float64
	// MaxAbsDiff is the largest per-size |p_i − q_i|.
	MaxAbsDiff float64
	// MaxAbsDiffSize is the size where MaxAbsDiff occurs.
	MaxAbsDiffSize int
	// MeanDiff is |mean(p) − mean(q)| in bytes.
	MeanDiff float64
}

// Compare measures the observed distribution against the reference.
// Either side being empty yields the zero Comparison.
func Compare(reference, observed *Counts) Comparison {
	var c Comparison
	if reference.Total() == 0 || observed.Total() == 0 {
		return c
	}
	sizes := map[int]bool{}
	for _, s := range reference.Sizes() {
		sizes[s] = true
	}
	for _, s := range observed.Sizes() {
		sizes[s] = true
	}
	scale := float64(observed.Total()) / float64(reference.Total())
	for s := range sizes {
		p := reference.Fraction(s)
		q := observed.Fraction(s)
		d := math.Abs(p - q)
		c.TotalVariation += d
		if d > c.MaxAbsDiff {
			c.MaxAbsDiff, c.MaxAbsDiffSize = d, s
		}
		expected := float64(reference.Get(s)) * scale
		obs := float64(observed.Get(s))
		if expected > 0 {
			c.ChiSquare += (obs - expected) * (obs - expected) / expected
		} else {
			c.ChiSquare += obs
		}
	}
	c.TotalVariation /= 2
	c.MeanDiff = math.Abs(reference.Mean() - observed.Mean())
	return c
}
