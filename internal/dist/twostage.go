package dist

import (
	"errors"
	"fmt"
	"sort"
)

// Params are the customizable parameters of the two-stage representation
// (§4.2.2) with the thesis's defaults.
type Params struct {
	// Precision ρ: length of the two sampling arrays. Larger arrays resolve
	// smaller probabilities. Default 1000.
	Precision int
	// BinSize σ_bin: how many consecutive packet sizes one second-stage bin
	// merges. Default 20.
	BinSize int
	// MaxSize N_ps: the largest packet size considered. Default 1500
	// (no jumbo frames in the MWN trace).
	MaxSize int
	// OutlierBound p_Ωbound: minimum fraction for a size to become a
	// first-stage outlier. Default 0.002 (2 per mille).
	OutlierBound float64
}

// DefaultParams returns the thesis defaults (ρ=1000, σ=20, N=1500, 2‰).
func DefaultParams() Params {
	return Params{Precision: 1000, BinSize: 20, MaxSize: 1500, OutlierBound: 0.002}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Precision <= 0 {
		p.Precision = d.Precision
	}
	if p.BinSize <= 0 {
		p.BinSize = d.BinSize
	}
	if p.MaxSize <= 0 {
		p.MaxSize = d.MaxSize
	}
	if p.OutlierBound <= 0 {
		p.OutlierBound = d.OutlierBound
	}
	return p
}

// NumBins returns n_bin = ceil(N_ps / σ_bin).
func (p Params) NumBins() int {
	return (p.MaxSize + p.BinSize - 1) / p.BinSize
}

// Entry is one input line of the procfs format: fill Cells cells of the
// sampling array with Size.
type Entry struct {
	Size  int // packet size (outliers) or bin start size (bins)
	Cells int // number of array cells
}

// Distribution is the complete two-stage representation: the procfs-level
// entries plus the expanded sampling arrays used at generation time.
type Distribution struct {
	Params   Params
	Outliers []Entry // first stage: exact sizes
	Bins     []Entry // second stage: bin start sizes

	// Expanded sampling arrays (§4.2.2 / A.2.1). outlierArr cells hold a
	// packet size or -1 ("consult the bins array"); binArr cells hold a bin
	// start size to which jitter in [0, σ_bin) is added.
	outlierArr []int32
	binArr     []int32
}

// Build computes the two-stage representation of counts (the createDist
// calculation, §4.2.3): fractions (4.1), the outlier set Ω (4.2), the bins
// (4.3–4.5), and cell allocations proportional to the probabilities.
// Cell allocation uses the largest-remainder method so each array is filled
// exactly: rounding each share independently (as a first implementation
// might) can over- or undershoot ρ.
func Build(counts *Counts, params Params) (*Distribution, error) {
	params = params.withDefaults()
	if counts.Total() == 0 {
		return nil, errors.New("dist: empty input distribution")
	}
	d := &Distribution{Params: params}

	// Stage 1: the outlier set Ω = {i | p_i ≥ p_Ωbound}.
	var outlierSizes []int
	outlierFrac := 0.0
	for _, s := range counts.Sizes() {
		if s > params.MaxSize {
			continue // beyond N_ps: ignored, like the thesis ignores jumbos
		}
		if f := counts.Fraction(s); f >= params.OutlierBound {
			outlierSizes = append(outlierSizes, s)
			outlierFrac += f
		}
	}

	// Stage 2: bins over the non-outlier mass (4.3–4.5).
	nbin := params.NumBins()
	binMass := make([]uint64, nbin)
	var restTotal uint64
	isOutlier := make(map[int]bool, len(outlierSizes))
	for _, s := range outlierSizes {
		isOutlier[s] = true
	}
	for _, s := range counts.Sizes() {
		if s > params.MaxSize || isOutlier[s] {
			continue
		}
		j := s / params.BinSize
		if j >= nbin {
			j = nbin - 1
		}
		binMass[j] += counts.Get(s)
		restTotal += counts.Get(s)
	}

	// Outlier cells: allocate round(p_i·ρ) in aggregate via largest
	// remainder, targeting outlierFrac·ρ cells in total so that the
	// remaining (-1) cells exactly cover the bin mass.
	outlierTarget := int(outlierFrac*float64(params.Precision) + 0.5)
	if outlierTarget > params.Precision {
		outlierTarget = params.Precision
	}
	weights := make([]float64, len(outlierSizes))
	for i, s := range outlierSizes {
		weights[i] = counts.Fraction(s)
	}
	cells := largestRemainder(weights, outlierTarget)
	for i, s := range outlierSizes {
		if cells[i] > 0 {
			d.Outliers = append(d.Outliers, Entry{Size: s, Cells: cells[i]})
		}
	}

	// Bin cells: the whole bins array (ρ cells) is distributed over the
	// non-outlier mass.
	if restTotal > 0 {
		w := make([]float64, nbin)
		for j, m := range binMass {
			w[j] = float64(m) / float64(restTotal)
		}
		bcells := largestRemainder(w, params.Precision)
		for j, n := range bcells {
			if n > 0 {
				d.Bins = append(d.Bins, Entry{Size: j * params.BinSize, Cells: n})
			}
		}
	}
	if err := d.expand(); err != nil {
		return nil, err
	}
	return d, nil
}

// largestRemainder apportions total cells over weights (Hamilton's method):
// exact totals, deterministic, and as close to proportional as integers
// allow.
func largestRemainder(weights []float64, total int) []int {
	type frac struct {
		idx int
		rem float64
	}
	cells := make([]int, len(weights))
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	if wsum == 0 || total <= 0 {
		return cells
	}
	assigned := 0
	rems := make([]frac, 0, len(weights))
	for i, w := range weights {
		exact := w / wsum * float64(total)
		floor := int(exact)
		cells[i] = floor
		assigned += floor
		rems = append(rems, frac{i, exact - float64(floor)})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].rem != rems[b].rem {
			return rems[a].rem > rems[b].rem
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; k < total-assigned && k < len(rems); k++ {
		cells[rems[k].idx]++
	}
	return cells
}

// FromEntries reconstructs a Distribution from parsed procfs entries
// (the kernel-module side of the interface).
func FromEntries(params Params, outliers, bins []Entry) (*Distribution, error) {
	params = params.withDefaults()
	d := &Distribution{Params: params, Outliers: outliers, Bins: bins}
	if err := d.expand(); err != nil {
		return nil, err
	}
	return d, nil
}

// expand fills the sampling arrays from the entries and checks the
// DIST_READY conditions (A.2.2: "will only succeed if the distribution is
// complete and correct").
func (d *Distribution) expand() error {
	p := d.Params
	d.outlierArr = make([]int32, p.Precision)
	d.binArr = make([]int32, p.Precision)
	pos := 0
	for _, e := range d.Outliers {
		if e.Size < 0 || e.Size > p.MaxSize {
			return fmt.Errorf("dist: outlier size %d out of range", e.Size)
		}
		if e.Cells < 0 || pos+e.Cells > p.Precision {
			return fmt.Errorf("dist: outlier cells overflow precision %d", p.Precision)
		}
		for k := 0; k < e.Cells; k++ {
			d.outlierArr[pos] = int32(e.Size)
			pos++
		}
	}
	for ; pos < p.Precision; pos++ {
		d.outlierArr[pos] = -1
	}

	pos = 0
	for _, e := range d.Bins {
		if e.Size < 0 || e.Size > p.MaxSize {
			return fmt.Errorf("dist: bin start %d out of range", e.Size)
		}
		if e.Size%p.BinSize != 0 {
			return fmt.Errorf("dist: bin start %d not aligned to width %d", e.Size, p.BinSize)
		}
		if e.Cells < 0 || pos+e.Cells > p.Precision {
			return fmt.Errorf("dist: bin cells overflow precision %d", p.Precision)
		}
		for k := 0; k < e.Cells; k++ {
			d.binArr[pos] = int32(e.Size)
			pos++
		}
	}
	// Unfilled bin cells fall back to the first bin entry (or size 0 for a
	// pure-outlier distribution where the bins array is unreachable): the
	// outliers array then never selects -1 into an undefined cell.
	fallback := int32(0)
	if len(d.Bins) > 0 {
		fallback = int32(d.Bins[0].Size)
	}
	for ; pos < p.Precision; pos++ {
		d.binArr[pos] = fallback
	}
	return nil
}

// Sample draws one packet size following Figure 4.3: index the outliers
// array; on -1, index the bins array and add jitter within the bin.
func (d *Distribution) Sample(rng *RNG) int {
	v := d.outlierArr[rng.Intn(len(d.outlierArr))]
	if v >= 0 {
		return int(v)
	}
	base := d.binArr[rng.Intn(len(d.binArr))]
	size := int(base) + rng.Intn(d.Params.BinSize)
	if size > d.Params.MaxSize {
		size = d.Params.MaxSize
	}
	return size
}

// Mean returns the expected packet size of the represented distribution.
func (d *Distribution) Mean() float64 {
	p := float64(len(d.outlierArr))
	var mean float64
	nonOutlier := 0.0
	for _, c := range d.outlierArr {
		if c >= 0 {
			mean += float64(c) / p
		} else {
			nonOutlier++
		}
	}
	if nonOutlier > 0 {
		var binMean float64
		for _, b := range d.binArr {
			binMean += float64(b) + float64(d.Params.BinSize-1)/2
		}
		binMean /= float64(len(d.binArr))
		mean += nonOutlier / p * binMean
	}
	return mean
}

// OutlierMass returns the probability of the first stage resolving the
// size (the fraction of non -1 cells).
func (d *Distribution) OutlierMass() float64 {
	n := 0
	for _, c := range d.outlierArr {
		if c >= 0 {
			n++
		}
	}
	return float64(n) / float64(len(d.outlierArr))
}
