package dist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadSizes reads the "sizes" input type of createDist: whitespace- or
// newline-separated packet sizes, arbitrarily many per line, arbitrarily
// long ("same numbers can occur arbitrarily often", §A.1.1).
func ReadSizes(r io.Reader, counts *Counts) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			return fmt.Errorf("dist: bad size %q", sc.Text())
		}
		counts.Add(v, 1)
	}
	return sc.Err()
}

// ReadDist reads the "dist" input type: one "<size><sep><count>" pair per
// line. sep is the field separator (createDist -fs, default space; any
// whitespace is accepted for the default).
func ReadDist(r io.Reader, sep byte, counts *Counts) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var fields []string
		if sep == ' ' {
			fields = strings.Fields(line)
		} else {
			fields = strings.Split(line, string(sep))
		}
		if len(fields) != 2 {
			return fmt.Errorf("dist: bad dist line %q", line)
		}
		size, err1 := strconv.Atoi(strings.TrimSpace(fields[0]))
		n, err2 := strconv.ParseUint(strings.TrimSpace(fields[1]), 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("dist: bad dist line %q", line)
		}
		counts.Add(size, n)
	}
	return sc.Err()
}

// WriteDist writes the "dist" output type: "<size><sep><count>" in
// ascending size order.
func WriteDist(w io.Writer, sep byte, counts *Counts) error {
	bw := bufio.NewWriter(w)
	for _, s := range counts.Sizes() {
		if _, err := fmt.Fprintf(bw, "%d%c%d\n", s, sep, counts.Get(s)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSizes writes n sizes sampled from d, one per line: the "sizes"
// output type, in which createDist "produces packet sizes according to the
// distribution and acts like the generator" (§A.1.2).
func WriteSizes(w io.Writer, d *Distribution, rng *RNG, n int) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintln(bw, d.Sample(rng)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
