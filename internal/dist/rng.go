// Package dist implements the packet-size-distribution machinery of the
// thesis: counting sizes (createDist), the two-stage outliers/bins
// representation of §4.2.2, the array computation of §4.2.3, the procfs
// exchange format of §A.2.2, and deterministic sampling (the enhanced
// pktgen's mod_cur_pktsize()).
//
// Sizes throughout this package are IP datagram lengths in bytes — the
// quantity ipsumdump extracts and Figure 4.1 plots (hence the 40-byte floor
// for bare ACKs). The generator adds the 14-byte Ethernet header on top.
package dist

// RNG is a deterministic xorshift64* pseudo-random generator. It stands in
// for the kernel's net_random(): fast, seedable, and fully reproducible,
// which the methodology requires ("the sequence of packets should be
// identical across different measurements", §3.2).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// nonzero constant; xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 pseudo-random bits (net_random() analogue).
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics for n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	// Multiply-shift range reduction; the tiny modulo bias of the kernel's
	// "net_random() % n" idiom is avoided essentially for free.
	return int((r.Uint64() >> 32) * uint64(n) >> 32)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
