package dist

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, draws = 10, 100000
	var hist [n]int
	for i := 0; i < draws; i++ {
		hist[r.Intn(n)]++
	}
	for i, h := range hist {
		got := float64(h) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %.4f, want ~0.1", i, got)
		}
	}
}

func TestCountsBasics(t *testing.T) {
	var c Counts
	c.Add(40, 100)
	c.Add(1500, 100)
	c.Add(40, 50)
	if c.Total() != 250 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Get(40) != 150 {
		t.Fatalf("count(40) = %d", c.Get(40))
	}
	wantMean := (40.0*150 + 1500*100) / 250
	if math.Abs(c.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %f, want %f", c.Mean(), wantMean)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := c.Sizes()
	if len(sizes) != 2 || sizes[0] != 40 || sizes[1] != 1500 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestTopShares(t *testing.T) {
	var c Counts
	c.Add(40, 500)
	c.Add(1500, 300)
	c.Add(576, 150)
	c.Add(100, 50)
	top, rest := c.TopShares(2)
	if len(top) != 2 || top[0].Size != 40 || top[1].Size != 1500 {
		t.Fatalf("top = %+v", top)
	}
	if math.Abs(top[0].Fraction-0.5) > 1e-9 || math.Abs(top[1].Cumulative-0.8) > 1e-9 {
		t.Fatalf("fractions wrong: %+v", top)
	}
	if math.Abs(rest-0.2) > 1e-9 {
		t.Fatalf("rest = %f", rest)
	}
}

func TestLargestRemainderExactTotal(t *testing.T) {
	f := func(raw []uint8, totalRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				any = true
			}
		}
		total := int(totalRaw)
		cells := largestRemainder(weights, total)
		sum := 0
		for _, c := range cells {
			if c < 0 {
				return false
			}
			sum += c
		}
		if !any || total == 0 {
			return sum == 0
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// mwnLike builds a small distribution shaped like the thesis trace.
func mwnLike() *Counts {
	var c Counts
	c.Add(40, 300000)
	c.Add(52, 150000)
	c.Add(1500, 120000)
	c.Add(576, 40000)
	c.Add(552, 30000)
	c.Add(1420, 20000)
	// Low-mass background spread over many sizes (below the 2‰ bound).
	for s := 60; s < 1500; s += 7 {
		c.Add(s, 300)
	}
	return &c
}

func TestBuildIdentifiesOutliers(t *testing.T) {
	c := mwnLike()
	d, err := Build(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{40: true, 52: true, 1500: true, 576: true, 552: true, 1420: true}
	got := map[int]bool{}
	for _, e := range d.Outliers {
		got[e.Size] = true
	}
	for s := range want {
		if !got[s] {
			t.Errorf("size %d (above bound) not an outlier", s)
		}
	}
	// Background sizes at 300/~663k ≈ 0.45‰ < 2‰ must not be outliers.
	if got[60] || got[67] {
		t.Error("background size misclassified as outlier")
	}
	// Array invariants: outlier cells sum ≤ ρ, bin cells sum = ρ.
	sumO, sumB := 0, 0
	for _, e := range d.Outliers {
		sumO += e.Cells
	}
	for _, e := range d.Bins {
		sumB += e.Cells
	}
	if sumO > d.Params.Precision {
		t.Fatalf("outlier cells %d exceed precision", sumO)
	}
	if sumB != d.Params.Precision {
		t.Fatalf("bin cells = %d, want %d", sumB, d.Params.Precision)
	}
}

func TestSampleMatchesInput(t *testing.T) {
	c := mwnLike()
	d, err := Build(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	const draws = 200000
	var got Counts
	for i := 0; i < draws; i++ {
		s := d.Sample(rng)
		if s < 0 || s > 1500 {
			t.Fatalf("sample %d out of range", s)
		}
		got.Add(s, 1)
	}
	// Outlier sizes must reproduce their input fractions within the array
	// quantization (1/ρ) plus sampling noise.
	for _, size := range []int{40, 52, 1500} {
		want := c.Fraction(size)
		have := got.Fraction(size)
		if math.Abs(want-have) > 0.01 {
			t.Errorf("size %d: input %.4f, sampled %.4f", size, want, have)
		}
	}
	// The mean must agree with the analytic mean of the representation.
	if math.Abs(got.Mean()-d.Mean()) > 10 {
		t.Errorf("sampled mean %.1f vs analytic %.1f", got.Mean(), d.Mean())
	}
}

func TestSampleDeterminism(t *testing.T) {
	c := mwnLike()
	d, _ := Build(c, DefaultParams())
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 10000; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("sampling diverged for equal seeds")
		}
	}
}

func TestProcfsRoundTrip(t *testing.T) {
	c := mwnLike()
	d, _ := Build(c, DefaultParams())
	var buf bytes.Buffer
	if err := WriteProcfs(&buf, d, false); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseProcfs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Outliers) != len(d.Outliers) || len(d2.Bins) != len(d.Bins) {
		t.Fatalf("entry counts differ: %d/%d vs %d/%d",
			len(d2.Outliers), len(d2.Bins), len(d.Outliers), len(d.Bins))
	}
	for i := range d.Outliers {
		if d.Outliers[i] != d2.Outliers[i] {
			t.Fatalf("outlier %d differs", i)
		}
	}
	// Identical sampling behaviour.
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 10000; i++ {
		if d.Sample(a) != d2.Sample(b) {
			t.Fatal("round-tripped distribution samples differently")
		}
	}
}

func TestProcfsPgsetWrapping(t *testing.T) {
	c := mwnLike()
	d, _ := Build(c, DefaultParams())
	var buf bytes.Buffer
	if err := WriteProcfs(&buf, d, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `pgset "dist `) {
		t.Fatalf("pgset wrapping missing: %q", buf.String()[:40])
	}
	if _, err := ParseProcfs(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestParseProcfsErrors(t *testing.T) {
	cases := map[string]string{
		"missing dist":   "outl 40 10\n",
		"short dist":     "dist 1000 20\n",
		"count mismatch": "dist 1000 20 1500 2 0\noutl 40 10\n",
		"bad directive":  "dist 1000 20 1500 0 0\nfoo 1 2\n",
		"cells overflow": "dist 100 20 1500 1 0\noutl 40 500\n",
		"size range":     "dist 1000 20 1500 1 0\noutl 2000 10\n",
		"bin alignment":  "dist 1000 20 1500 0 1\nhist 13 10\n",
	}
	for name, text := range cases {
		if _, err := ParseProcfs(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestReadWriteSizesAndDist(t *testing.T) {
	var c Counts
	if err := ReadSizes(strings.NewReader("40 40 1500\n576\n40\n"), &c); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 5 || c.Get(40) != 3 {
		t.Fatalf("counts = %+v", c)
	}
	var buf bytes.Buffer
	if err := WriteDist(&buf, ' ', &c); err != nil {
		t.Fatal(err)
	}
	var c2 Counts
	if err := ReadDist(&buf, ' ', &c2); err != nil {
		t.Fatal(err)
	}
	if c2.Total() != 5 || c2.Get(1500) != 1 || c2.Get(576) != 1 {
		t.Fatalf("round trip = %+v", c2)
	}
	// Custom separator.
	var c3 Counts
	if err := ReadDist(strings.NewReader("40:7\n100:3\n"), ':', &c3); err != nil {
		t.Fatal(err)
	}
	if c3.Total() != 10 {
		t.Fatalf("custom sep total = %d", c3.Total())
	}
}

func TestWriteSizesGenerates(t *testing.T) {
	c := mwnLike()
	d, _ := Build(c, DefaultParams())
	var buf bytes.Buffer
	if err := WriteSizes(&buf, d, NewRNG(3), 1000); err != nil {
		t.Fatal(err)
	}
	var back Counts
	if err := ReadSizes(&buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != 1000 {
		t.Fatalf("generated %d sizes", back.Total())
	}
}

// Property: Build never produces arrays that sample out of range, for any
// random input distribution.
func TestBuildSampleRangeProperty(t *testing.T) {
	f := func(seed uint64, sizes []uint16, weights []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		var c Counts
		for i, s := range sizes {
			w := uint64(1)
			if i < len(weights) {
				w = uint64(weights[i]) + 1
			}
			c.Add(int(s)%1501, w)
		}
		d, err := Build(&c, DefaultParams())
		if err != nil {
			return false
		}
		rng := NewRNG(seed)
		for i := 0; i < 200; i++ {
			s := d.Sample(rng)
			if s < 0 || s > 1500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEmptyInput(t *testing.T) {
	var c Counts
	if _, err := Build(&c, DefaultParams()); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPureOutlierDistribution(t *testing.T) {
	var c Counts
	c.Add(40, 100)
	d, err := Build(&c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if s := d.Sample(rng); s != 40 {
			t.Fatalf("pure-outlier distribution sampled %d", s)
		}
	}
	if d.OutlierMass() != 1.0 {
		t.Fatalf("outlier mass = %f", d.OutlierMass())
	}
}

func TestCompareIdentical(t *testing.T) {
	c := mwnLike()
	cmp := Compare(c, c)
	if cmp.TotalVariation != 0 || cmp.MaxAbsDiff != 0 || cmp.MeanDiff != 0 {
		t.Fatalf("self-comparison = %+v", cmp)
	}
	if cmp.ChiSquare > 1e-9 {
		t.Fatalf("chi-square = %v", cmp.ChiSquare)
	}
}

func TestCompareDisjoint(t *testing.T) {
	var a, b Counts
	a.Add(40, 100)
	b.Add(1500, 100)
	cmp := Compare(&a, &b)
	if math.Abs(cmp.TotalVariation-1.0) > 1e-9 {
		t.Fatalf("disjoint TV = %v, want 1", cmp.TotalVariation)
	}
	if cmp.MeanDiff != 1460 {
		t.Fatalf("mean diff = %v", cmp.MeanDiff)
	}
}

func TestCompareSampledDistributionIsClose(t *testing.T) {
	input := mwnLike()
	d, err := Build(input, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(11)
	var got Counts
	for i := 0; i < 200000; i++ {
		got.Add(d.Sample(rng), 1)
	}
	cmp := Compare(input, &got)
	// The second stage smears non-outlier mass uniformly within its 20-byte
	// bins; mwnLike's sparse background (every 7th size) therefore moves
	// ≈ background_mass × 17/20 ≈ 7.5 % of total mass by construction.
	if cmp.TotalVariation > 0.10 {
		t.Fatalf("TV = %.4f, want small", cmp.TotalVariation)
	}
	if cmp.MeanDiff > 15 {
		t.Fatalf("mean diff = %.2f bytes", cmp.MeanDiff)
	}
}

func TestCompareEmpty(t *testing.T) {
	var empty Counts
	full := mwnLike()
	if got := Compare(&empty, full); got != (Comparison{}) {
		t.Fatalf("empty reference = %+v", got)
	}
	if got := Compare(full, &empty); got != (Comparison{}) {
		t.Fatalf("empty observation = %+v", got)
	}
}
