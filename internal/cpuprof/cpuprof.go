// Package cpuprof reimplements the thesis's profiling tools (Chapter 5,
// §A.3/A.4): cpusage, which samples the CPU state counters every half
// second and reports per-state percentages, and trimusage, which
// postprocesses a cpusage log by extracting the longest run of samples
// whose idle value stays below a limit (the actual measurement window) and
// averaging over it.
//
// Instead of /proc/stat (Linux) or the kern.cp_time sysctl (FreeBSD), the
// sampler reads the simulated machine's busy counters; everything
// downstream — formats, trimming, summaries — matches the original tools.
package cpuprof

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/capture"
	"repro/internal/sim"
)

// DefaultInterval is cpusage's sampling period ("each half second").
const DefaultInterval = 500 * sim.Millisecond

// Sample is one cpusage line: the share of each CPU state over one
// interval, in percent of total CPU capacity.
type Sample struct {
	At   sim.Time
	User float64
	Sys  float64 // kernel context (syscalls, housekeeping)
	Soft float64 // soft interrupts (Linux NET_RX)
	Intr float64 // hardware interrupts
	Idle float64
}

// States returns the values in cpusage's column order for the OS: Linux
// prints 7 states (user nice system idle iowait irq softirq), FreeBSD 5
// (user nice sys intr idle) — the difference trimusage's field counting
// has to cope with, as the thesis notes in its awk listing.
func (s Sample) States(os capture.OS) []float64 {
	if os == capture.Linux {
		return []float64{s.User, 0, s.Sys, s.Idle, 0, s.Intr, s.Soft}
	}
	return []float64{s.User, 0, s.Sys + s.Soft, s.Intr, s.Idle}
}

// StateNames returns the column names matching States.
func StateNames(os capture.OS) []string {
	if os == capture.Linux {
		return []string{"user", "nice", "sys", "idle", "iowait", "irq", "softirq"}
	}
	return []string{"user", "nice", "sys", "intr", "idle"}
}

// Sampler collects samples from a running simulated system.
type Sampler struct {
	Interval sim.Time
	Samples  []Sample

	sys  *capture.System
	prev [sim.NumPrio]sim.Time
	last sim.Time
}

// Attach arms a sampler on sys; it samples every interval until the
// system's generation phase ends. Attach must be called before sys.Run.
func Attach(sys *capture.System, interval sim.Time) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	sp := &Sampler{Interval: interval, sys: sys}
	var tick func()
	tick = func() {
		sp.take()
		if !sys.Done() {
			sys.Sim.After(sp.Interval, tick)
		}
	}
	sys.Sim.After(interval, tick)
	return sp
}

func (sp *Sampler) take() {
	now := sp.sys.Sim.Now()
	window := float64(now - sp.last)
	if window <= 0 {
		return
	}
	capacity := window * float64(len(sp.sys.Machine.CPUs))
	var cur [sim.NumPrio]sim.Time
	for _, c := range sp.sys.Machine.CPUs {
		for p := sim.Prio(0); p < sim.NumPrio; p++ {
			cur[p] += c.Busy(p)
		}
	}
	pct := func(p sim.Prio) float64 {
		return float64(cur[p]-sp.prev[p]) / capacity * 100
	}
	s := Sample{
		At:   now,
		User: pct(sim.PrioUser),
		Sys:  pct(sim.PrioKernel),
		Soft: pct(sim.PrioSoftIRQ),
		Intr: pct(sim.PrioHardIRQ),
	}
	s.Idle = 100 - s.User - s.Sys - s.Soft - s.Intr
	if s.Idle < 0 {
		s.Idle = 0
	}
	sp.Samples = append(sp.Samples, s)
	sp.prev = cur
	sp.last = now
}

// Write renders samples in cpusage's output format; machineReadable
// matches the -o option ("no CPU state names ... only colons separate the
// values").
func Write(w io.Writer, samples []Sample, os capture.OS, machineReadable bool) error {
	bw := bufio.NewWriter(w)
	names := StateNames(os)
	for _, s := range samples {
		vals := s.States(os)
		if machineReadable {
			parts := make([]string, len(vals))
			for i, v := range vals {
				parts[i] = fmt.Sprintf("%.1f", v)
			}
			fmt.Fprintln(bw, strings.Join(parts, ":"))
			continue
		}
		for i, v := range vals {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%s %5.1f%%", names[i], v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Parse reads machine-readable cpusage output (5 or 7 colon-separated
// fields per line; trimusage determines the OS from the field count, just
// like the original awk script infers "7 for Linux, 5 for FreeBSD").
func Parse(r io.Reader) ([]Sample, capture.OS, error) {
	sc := bufio.NewScanner(r)
	var out []Sample
	os := capture.FreeBSD
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.Contains(line, "---") || strings.HasPrefix(line, "Min") ||
			strings.HasPrefix(line, "Max") || strings.HasPrefix(line, "Avg") {
			continue // trimusage ignores these lines too
		}
		fields := strings.Split(line, ":")
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, os, fmt.Errorf("cpuprof: line %d: bad value %q", lineNo, f)
			}
			vals[i] = v
		}
		var s Sample
		switch len(vals) {
		case 7: // Linux: user nice sys idle iowait irq softirq
			os = capture.Linux
			s = Sample{User: vals[0], Sys: vals[2], Idle: vals[3], Intr: vals[5], Soft: vals[6]}
		case 5: // FreeBSD: user nice sys intr idle
			os = capture.FreeBSD
			s = Sample{User: vals[0], Sys: vals[2], Intr: vals[3], Idle: vals[4]}
		default:
			return nil, os, fmt.Errorf("cpuprof: line %d: %d fields (want 5 or 7)", lineNo, len(vals))
		}
		out = append(out, s)
	}
	return out, os, sc.Err()
}

// Trim extracts the longest consecutive run of samples whose idle value is
// below idleLimit — trimusage's core logic ("determine the longest set of
// lines under the limit"; default limit 95).
func Trim(samples []Sample, idleLimit float64) []Sample {
	if idleLimit <= 0 {
		idleLimit = 95
	}
	bestStart, bestLen := 0, 0
	curStart, curLen := 0, 0
	for i, s := range samples {
		if s.Idle < idleLimit {
			if curLen == 0 {
				curStart = i
			}
			curLen++
			if curLen > bestLen {
				bestStart, bestLen = curStart, curLen
			}
		} else {
			curLen = 0
		}
	}
	return samples[bestStart : bestStart+bestLen]
}

// Summary is the Min/Max/Avg block cpusage and trimusage append.
type Summary struct {
	Min, Max, Avg Sample
}

// Summarize computes per-state minimum, maximum and average.
func Summarize(samples []Sample) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	min := samples[0]
	max := samples[0]
	var sum Sample
	upd := func(dst *float64, v float64, better func(a, b float64) bool) {
		if better(v, *dst) {
			*dst = v
		}
	}
	lt := func(a, b float64) bool { return a < b }
	gt := func(a, b float64) bool { return a > b }
	for _, s := range samples {
		upd(&min.User, s.User, lt)
		upd(&min.Sys, s.Sys, lt)
		upd(&min.Soft, s.Soft, lt)
		upd(&min.Intr, s.Intr, lt)
		upd(&min.Idle, s.Idle, lt)
		upd(&max.User, s.User, gt)
		upd(&max.Sys, s.Sys, gt)
		upd(&max.Soft, s.Soft, gt)
		upd(&max.Intr, s.Intr, gt)
		upd(&max.Idle, s.Idle, gt)
		sum.User += s.User
		sum.Sys += s.Sys
		sum.Soft += s.Soft
		sum.Intr += s.Intr
		sum.Idle += s.Idle
	}
	n := float64(len(samples))
	return Summary{
		Min: min,
		Max: max,
		Avg: Sample{User: sum.User / n, Sys: sum.Sys / n, Soft: sum.Soft / n,
			Intr: sum.Intr / n, Idle: sum.Idle / n},
	}
}

// Busy returns the average non-idle percentage of a sample set.
func Busy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var b float64
	for _, s := range samples {
		b += 100 - s.Idle
	}
	return b / float64(len(samples))
}
