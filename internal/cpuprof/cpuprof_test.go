package cpuprof

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/capture"
	"repro/internal/dist"
	"repro/internal/pktgen"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runSampled(t *testing.T, os capture.OS) (*Sampler, capture.Stats) {
	t.Helper()
	cfg := capture.Config{
		Name: "t", Arch: arch.Opteron244(), OS: os,
		NumCPUs: 2, BufferBytes: 4 << 20,
	}
	cfg.Costs = capture.DefaultCosts()
	cfg.Costs.HousekeepNS = 0
	sys := capture.NewSystem(cfg)
	sp := Attach(sys, 5*sim.Millisecond)
	d, err := dist.Build(trace.MWNCounts(100000), dist.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g := pktgen.New(1)
	g.Config.Count = 20000
	g.Config.TargetRate = 600e6
	g.LoadDistribution(d)
	st := sys.Run(g)
	return sp, st
}

func TestSamplerCollectsPlausibleSamples(t *testing.T) {
	sp, st := runSampled(t, capture.FreeBSD)
	if len(sp.Samples) < 10 {
		t.Fatalf("only %d samples", len(sp.Samples))
	}
	for _, s := range sp.Samples {
		total := s.User + s.Sys + s.Soft + s.Intr + s.Idle
		if total < 99.0 || total > 101.0 {
			t.Fatalf("sample does not sum to 100: %+v", s)
		}
		if s.Idle < -0.01 || s.User < -0.01 || s.Intr < -0.01 {
			t.Fatalf("negative state: %+v", s)
		}
	}
	// The sampler's busy average must agree with the run's CPU usage.
	if got, want := Busy(Trim(sp.Samples, 99.9)), st.CPUUsage(); math.Abs(got-want) > 12 {
		t.Fatalf("sampled busy %.1f%% vs stats %.1f%%", got, want)
	}
	// FreeBSD does its capture work in interrupt context.
	sum := Summarize(sp.Samples)
	if sum.Avg.Intr <= 0 {
		t.Fatal("no interrupt time sampled on FreeBSD")
	}
}

func TestLinuxShowsSoftirqTime(t *testing.T) {
	sp, _ := runSampled(t, capture.Linux)
	sum := Summarize(sp.Samples)
	if sum.Avg.Soft <= 0 {
		t.Fatal("no softirq time sampled on Linux")
	}
	if sum.Avg.User <= 0 {
		t.Fatal("no user time sampled")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	samples := []Sample{
		{User: 10.5, Sys: 5.1, Soft: 2.0, Intr: 12.4, Idle: 70.0},
		{User: 50.0, Sys: 10.0, Soft: 5.0, Intr: 20.0, Idle: 15.0},
	}
	for _, os := range []capture.OS{capture.Linux, capture.FreeBSD} {
		var buf bytes.Buffer
		if err := Write(&buf, samples, os, true); err != nil {
			t.Fatal(err)
		}
		got, gotOS, err := Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotOS != os {
			t.Fatalf("parsed OS = %v, want %v", gotOS, os)
		}
		if len(got) != len(samples) {
			t.Fatalf("parsed %d samples", len(got))
		}
		for i := range got {
			if math.Abs(got[i].User-samples[i].User) > 0.05 ||
				math.Abs(got[i].Intr-samples[i].Intr) > 0.05 ||
				math.Abs(got[i].Idle-samples[i].Idle) > 0.05 {
				t.Fatalf("sample %d: %+v != %+v", i, got[i], samples[i])
			}
			if os == capture.Linux && math.Abs(got[i].Soft-samples[i].Soft) > 0.05 {
				t.Fatalf("softirq lost: %+v", got[i])
			}
		}
	}
}

func TestParseIgnoresDecorations(t *testing.T) {
	in := "---\nMin ignored\n10.0:0.0:5.0:60.0:0.0:15.0:10.0\nAvg ignored\n"
	got, os, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if os != capture.Linux || len(got) != 1 {
		t.Fatalf("parse = %v, %d samples", os, len(got))
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse(strings.NewReader("1:2:3\n")); err == nil {
		t.Fatal("3-field line accepted")
	}
	if _, _, err := Parse(strings.NewReader("a:b:c:d:e\n")); err == nil {
		t.Fatal("non-numeric line accepted")
	}
}

func TestTrimFindsLongestBusyRun(t *testing.T) {
	mk := func(idles ...float64) []Sample {
		out := make([]Sample, len(idles))
		for i, v := range idles {
			out[i] = Sample{Idle: v, User: 100 - v}
		}
		return out
	}
	samples := mk(99, 99, 50, 40, 99, 30, 20, 10, 99, 99)
	got := Trim(samples, 95)
	if len(got) != 3 || got[0].Idle != 30 {
		t.Fatalf("trim = %+v, want the 30/20/10 run", got)
	}
	// All idle: empty result.
	if got := Trim(mk(99, 99), 95); len(got) != 0 {
		t.Fatalf("trim of idle log = %d samples", len(got))
	}
	// All busy: everything.
	if got := Trim(mk(10, 20, 30), 95); len(got) != 3 {
		t.Fatalf("trim of busy log = %d samples", len(got))
	}
}

// Property: Trim returns a contiguous subsequence whose every idle value is
// under the limit, and no longer qualifying run exists.
func TestTrimProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		samples := make([]Sample, len(raw))
		for i, v := range raw {
			samples[i] = Sample{Idle: float64(v % 101)}
		}
		const limit = 95
		got := Trim(samples, limit)
		for _, s := range got {
			if s.Idle >= limit {
				return false
			}
		}
		// Verify maximality by scanning.
		best := 0
		cur := 0
		for _, s := range samples {
			if s.Idle < limit {
				cur++
				if cur > best {
					best = cur
				}
			} else {
				cur = 0
			}
		}
		return len(got) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]Sample{
		{User: 10, Idle: 90},
		{User: 30, Idle: 70},
	})
	if s.Min.User != 10 || s.Max.User != 30 || s.Avg.User != 20 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Avg.Idle != 80 {
		t.Fatalf("avg idle = %v", s.Avg.Idle)
	}
	empty := Summarize(nil)
	if empty.Avg.User != 0 {
		t.Fatal("empty summary should be zero")
	}
}
