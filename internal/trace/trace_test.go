package trace

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/pcapfile"
	"repro/internal/pkt"
)

// TestMWNShape pins every documented property of the thesis trace.
func TestMWNShape(t *testing.T) {
	c := MWNCounts(10_000_000)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 10_000_000 {
		t.Fatalf("total = %d", c.Total())
	}

	top, _ := c.TopShares(20)
	// "The most frequent sizes can be identified at 40, 52 and 1500 bytes."
	want3 := map[int]bool{40: true, 52: true, 1500: true}
	for _, s := range top[:3] {
		if !want3[s.Size] {
			t.Errorf("top-3 contains %d, want {40, 52, 1500}", s.Size)
		}
	}
	// "The three most frequently appearing packet sizes represent more than
	// 55 % of all packets."
	if top[2].Cumulative <= 0.55 {
		t.Errorf("top-3 cumulative = %.3f, want > 0.55", top[2].Cumulative)
	}
	// "...the top 20 packet sizes account for over 75 % of all packets."
	if top[19].Cumulative <= 0.75 {
		t.Errorf("top-20 cumulative = %.3f, want > 0.75", top[19].Cumulative)
	}
	// "...given an average packet size of about 645 Bytes." (§6.3.1)
	if mean := c.Mean(); math.Abs(mean-645) > 25 {
		t.Errorf("mean = %.1f, want ≈ 645", mean)
	}
	// No jumbo frames, nothing below a bare ACK.
	for _, s := range c.Sizes() {
		if s < 40 || s > 1500 {
			t.Fatalf("size %d outside [40, 1500]", s)
		}
	}
}

func TestMWNDeterminism(t *testing.T) {
	a, b := MWNCounts(123456), MWNCounts(123456)
	as, bs := a.Sizes(), b.Sizes()
	if len(as) != len(bs) {
		t.Fatal("size sets differ")
	}
	for i := range as {
		if as[i] != bs[i] || a.Get(as[i]) != b.Get(bs[i]) {
			t.Fatal("counts differ between runs")
		}
	}
}

func TestMWNSurvivesTwoStage(t *testing.T) {
	c := MWNCounts(1_000_000)
	d, err := dist.Build(c, dist.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The representation's analytic mean must stay near the input mean.
	if math.Abs(d.Mean()-c.Mean()) > 30 {
		t.Fatalf("two-stage mean %.1f vs input %.1f", d.Mean(), c.Mean())
	}
	// 40/52/1500 must be outliers.
	got := map[int]bool{}
	for _, e := range d.Outliers {
		got[e.Size] = true
	}
	for _, s := range []int{40, 52, 1500} {
		if !got[s] {
			t.Errorf("size %d not an outlier", s)
		}
	}
}

func TestSynthesizeProducesReadableTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Synthesize(&buf, 500, 7, 0); err != nil {
		t.Fatal(err)
	}
	r, err := pcapfile.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var prev int64 = -1
	for {
		info, data, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		s, err := pkt.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		if !s.IsUDP {
			t.Fatal("synthesized packet is not UDP")
		}
		if int(s.IPv4.Length)+pkt.EthernetHeaderLen != info.CapLen {
			t.Fatalf("length mismatch: IP %d, frame %d", s.IPv4.Length, info.CapLen)
		}
		if ts := info.Timestamp.UnixNano(); ts < prev {
			t.Fatal("timestamps not monotone")
		} else {
			prev = ts
		}
		n++
	}
	if n != 500 {
		t.Fatalf("read %d packets, want 500", n)
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := Synthesize(&a, 200, 42, 0); err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(&b, 200, 42, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different traces")
	}
	var c bytes.Buffer
	if err := Synthesize(&c, 200, 43, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSelfSimilarArrivals(t *testing.T) {
	const n = 50000
	mean := 5000.0 // 5µs
	gaps := SelfSimilarArrivals(n, mean, 16, 1.5, 11)
	if len(gaps) != n {
		t.Fatalf("got %d gaps", len(gaps))
	}
	var sum float64
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += float64(g)
	}
	got := sum / n
	if got < mean/3 || got > mean*3 {
		t.Fatalf("mean gap = %.0f, want within 3x of %.0f", got, mean)
	}
	// Burstiness: the coefficient of variation of per-window counts must
	// exceed that of a Poisson process at several window sizes (the
	// self-similarity signature of §2.5).
	for _, windowGaps := range []int{100, 1000} {
		var counts []float64
		idx := 0
		for idx+windowGaps <= n {
			var span float64
			for i := 0; i < windowGaps; i++ {
				span += float64(gaps[idx+i])
			}
			counts = append(counts, span)
			idx += windowGaps
		}
		m, v := meanVar(counts)
		cv := math.Sqrt(v) / m
		poissonCV := 1 / math.Sqrt(float64(windowGaps))
		if cv < poissonCV {
			t.Errorf("window %d: CV %.4f below Poisson %.4f; no burstiness", windowGaps, cv, poissonCV)
		}
	}
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return
}

func TestSelfSimilarDeterminism(t *testing.T) {
	a := SelfSimilarArrivals(1000, 1000, 8, 1.5, 3)
	b := SelfSimilarArrivals(1000, 1000, 8, 1.5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDiurnalRate(t *testing.T) {
	if r := DiurnalRate(5); math.Abs(r-220e6) > 1e3 {
		t.Fatalf("trough = %v", r)
	}
	if r := DiurnalRate(17); math.Abs(r-1200e6) > 1e3 {
		t.Fatalf("peak = %v", r)
	}
	for h := -24.0; h < 48; h += 0.5 {
		r := DiurnalRate(h)
		if r < 220e6-1 || r > 1200e6+1 {
			t.Fatalf("hour %.1f: rate %v out of documented band", h, r)
		}
	}
	// Wrap-around consistency.
	if DiurnalRate(-1) != DiurnalRate(23) || DiurnalRate(25) != DiurnalRate(1) {
		t.Fatal("wrap-around broken")
	}
}
