// Package trace synthesizes workloads shaped like the thesis's 24-hour
// MWN uplink trace. The thesis only uses the trace's packet-size
// distribution (type and content of packets do not influence capturing,
// §3.2), and documents its shape precisely:
//
//   - dominant sizes 40, 52 and 1500 bytes, together more than 55 % of all
//     packets (Figure 4.2);
//   - the top-20 sizes account for more than 75 %;
//   - further peaks at 44–64, 552, 576 and 1420–1500 (Figure 4.1);
//   - a mean packet size of about 645 bytes (§6.3.1);
//   - no jumbo frames.
//
// MWNCounts reproduces exactly that shape deterministically; Synthesize
// writes a pcap trace drawn from it, so the offline tools (createDist,
// capture) can be exercised end to end. SelfSimilarArrivals provides the
// bursty arrival process discussed in §2.5 for the burst-absorption
// experiments.
package trace

import (
	"io"
	"math"
	"net/netip"
	"time"

	"repro/internal/dist"
	"repro/internal/pcapfile"
	"repro/internal/pkt"
)

// peak is one documented high-frequency packet size.
type peak struct {
	size int
	frac float64
}

// mwnPeaks lists the top-20 sizes of Figure 4.2 with fractions chosen to
// satisfy every shape constraint above. The exact per-size fractions below
// the top three are not published; the values are interpolated to fall off
// the way the Figure 4.2 histogram does.
var mwnPeaks = []peak{
	{40, 0.280},   // bare ACKs (IP total length 40)
	{52, 0.160},   // ACKs with timestamp option
	{1500, 0.155}, // full MTU
	{1420, 0.0200},
	{552, 0.0180}, // classic BSD default MSS
	{48, 0.0160},
	{1492, 0.0150}, // PPPoE MTU
	{576, 0.0140},  // classic path-MTU default
	{64, 0.0130},
	{1300, 0.0120},
	{1400, 0.0110},
	{60, 0.0100},
	{44, 0.0090},
	{1452, 0.0085},
	{1454, 0.0080},
	{57, 0.0075},
	{1440, 0.0070},
	{1460, 0.0065},
	{1470, 0.0060},
	{1480, 0.0055},
}

// MWNCounts builds a deterministic size distribution with total packets
// distributed per the documented MWN shape. Sizes are IP datagram lengths.
func MWNCounts(total uint64) *dist.Counts {
	var c dist.Counts
	if total == 0 {
		return &c
	}
	var peakMass float64
	for _, p := range mwnPeaks {
		peakMass += p.frac
	}
	assigned := uint64(0)
	for _, p := range mwnPeaks {
		n := uint64(p.frac*float64(total) + 0.5)
		c.Add(p.size, n)
		assigned += n
	}
	// Background: the remaining mass spreads over all sizes 40..1500 with a
	// bimodal weight (small packets and near-MTU packets dominate real
	// traffic between the peaks). Deterministic cumulative rounding spreads
	// the exact remainder.
	rest := uint64(0)
	if total > assigned {
		rest = total - assigned
	}
	isPeak := make(map[int]bool, len(mwnPeaks))
	for _, p := range mwnPeaks {
		isPeak[p.size] = true
	}
	var weights []float64
	var sizes []int
	var wsum float64
	for s := 40; s <= 1500; s++ {
		if isPeak[s] {
			continue
		}
		w := backgroundWeight(s)
		sizes = append(sizes, s)
		weights = append(weights, w)
		wsum += w
	}
	acc := 0.0
	given := uint64(0)
	for i, s := range sizes {
		acc += weights[i] / wsum * float64(rest)
		n := uint64(acc+0.5) - given
		if given+n > rest {
			n = rest - given
		}
		if n > 0 {
			c.Add(s, n)
			given += n
		}
	}
	if given < rest {
		c.Add(1500, rest-given)
	}
	return &c
}

// backgroundWeight shapes the non-peak mass: a decaying small-packet mode,
// a flat middle, and a rising near-MTU mode. The resulting overall mean
// lands at the documented ≈645 bytes.
func backgroundWeight(s int) float64 {
	small := math.Exp(-float64(s-40) / 120.0)
	large := math.Exp(-float64(1500-s)/90.0) * 1.9
	return 0.25*small + 0.06 + large
}

// Synthesize writes n packets drawn from the MWN distribution to w as a
// pcap file. Packets are UDP frames between the thesis's measurement
// addresses; frame length = IP length + 14. Arrival times are spaced as if
// the trace were captured at rate bits/s (0 means 400 Mbit/s, the MWN
// average). The sizes drawn and the bytes written are fully determined by
// seed.
func Synthesize(w io.Writer, n int, seed uint64, rate float64) error {
	if rate <= 0 {
		rate = 400e6
	}
	counts := MWNCounts(1_000_000)
	d, err := dist.Build(counts, dist.DefaultParams())
	if err != nil {
		return err
	}
	rng := dist.NewRNG(seed)
	pw := pcapfile.NewWriter(w, 65535)
	var buf [pkt.MaxFrameLen]byte
	ts := time.Date(2005, time.November, 15, 0, 0, 0, 0, time.UTC)
	src := netip.MustParseAddr("192.168.10.100")
	dst := netip.MustParseAddr("192.168.10.12")
	for i := 0; i < n; i++ {
		ipLen := d.Sample(rng)
		frame := pkt.BuildUDP(buf[:], pkt.UDPSpec{
			SrcMAC: pkt.MAC{0, 0, 0, 0, 0, byte(i % 3)},
			DstMAC: pkt.MAC{0x00, 0x0e, 0x0c, 0xaa, 0xbb, 0xcc},
			SrcIP:  src, DstIP: dst,
			SrcPort: 9, DstPort: 9,
			FrameLen: ipLen + pkt.EthernetHeaderLen,
			Seq:      uint32(i),
		})
		if err := pw.WritePacket(ts, frame, len(frame)); err != nil {
			return err
		}
		wire := float64(len(frame)+pkt.WireOverhead) * 8
		ts = ts.Add(time.Duration(wire / rate * 1e9))
	}
	return pw.Flush()
}

// SelfSimilarArrivals generates n inter-arrival gaps (in nanoseconds) from
// a superposition of on/off sources with Pareto-distributed period lengths
// (§2.5: self-similar traffic arises from superposed heavy-tailed
// sources). The gaps average to the given mean but exhibit bursts at all
// time scales, unlike a Poisson process.
func SelfSimilarArrivals(n int, meanGapNS float64, sources int, alpha float64, seed uint64) []int64 {
	if sources <= 0 {
		sources = 16
	}
	if alpha <= 1.0 || alpha >= 2.0 {
		alpha = 1.5
	}
	rng := dist.NewRNG(seed)
	pareto := func(scale float64) float64 {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		return scale / math.Pow(u, 1/alpha)
	}
	// Each source alternates ON (emitting one packet per slot) and OFF.
	// Aggregate by walking time in slots and counting active sources.
	type src struct {
		on        bool
		remaining int
	}
	srcs := make([]src, sources)
	meanPeriod := 50.0
	for i := range srcs {
		srcs[i].on = rng.Intn(2) == 0
		srcs[i].remaining = int(pareto(meanPeriod))
	}
	// Expected active fraction is 1/2; scale the slot so the average gap
	// comes out at meanGapNS.
	slotNS := meanGapNS * float64(sources) / 2
	gaps := make([]int64, 0, n)
	carry := 0.0
	for len(gaps) < n {
		active := 0
		for i := range srcs {
			if srcs[i].on {
				active++
			}
			srcs[i].remaining--
			if srcs[i].remaining <= 0 {
				srcs[i].on = !srcs[i].on
				srcs[i].remaining = int(pareto(meanPeriod))
			}
		}
		if active == 0 {
			carry += slotNS
			continue
		}
		gap := slotNS/float64(active) + carry/float64(active)
		carry = 0
		for k := 0; k < active && len(gaps) < n; k++ {
			gaps = append(gaps, int64(gap))
		}
	}
	return gaps
}

// DiurnalRate returns the MWN uplink's documented utilization at a time of
// day, in bits/s: "from about 220 Mbit/s ... to about 1200 Mbit/s at peak
// times" (§4.1.4), with the trough in the early morning and the peak in
// the late afternoon. t is the hour of day in [0, 24).
func DiurnalRate(hour float64) float64 {
	for hour < 0 {
		hour += 24
	}
	for hour >= 24 {
		hour -= 24
	}
	// Cosine day shape: minimum 220 Mbit/s at 05:00, maximum 1200 Mbit/s
	// at 17:00.
	const lo, hi = 220e6, 1200e6
	phase := (hour - 5) / 12 * math.Pi
	return lo + (hi-lo)*(1-math.Cos(phase))/2
}
