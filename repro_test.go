package repro

import (
	"bytes"
	"io"
	"testing"
)

func TestRunFacade(t *testing.T) {
	w := Workload{Packets: 5000, TargetRate: 500e6, Seed: 1}
	st := Run(Moorhen(), w)
	if st.CaptureRate() < 99 {
		t.Fatalf("moorhen capture rate %.2f%% at 500 Mbit/s", st.CaptureRate())
	}
	if st.CPUUsage() <= 0 || st.CPUUsage() >= 100 {
		t.Fatalf("cpu usage %.2f%%", st.CPUUsage())
	}
}

func TestSweepFacade(t *testing.T) {
	series := Sweep([]Config{Swan()}, []float64{200}, Workload{Packets: 3000, Seed: 2}, 1)
	if len(series) != 1 || len(series[0].Points) != 1 {
		t.Fatalf("series = %+v", series)
	}
	tbl := FormatTable("x", series)
	if len(tbl) == 0 {
		t.Fatal("empty table")
	}
}

func TestExperimentFacade(t *testing.T) {
	out, err := RunExperiment("fig4.2", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty experiment output")
	}
	if _, err := RunExperiment("missing", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Experiments()) < 25 {
		t.Fatalf("only %d experiments", len(Experiments()))
	}
}

func TestCompileFilterFacade(t *testing.T) {
	prog, err := CompileFilter(ReferenceFilter, 1515)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 50 {
		t.Fatalf("reference filter = %d instructions, want 50", len(prog))
	}
}

func TestOfflineHandle(t *testing.T) {
	var buf bytes.Buffer
	if err := SynthesizeTrace(&buf, 300, 7, 0); err != nil {
		t.Fatal(err)
	}
	h, err := OpenOffline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetFilter("udp"); err != nil {
		t.Fatal(err)
	}
	n := 0
	var out bytes.Buffer
	dw := NewDumpWriter(&out, 76)
	for {
		info, data, err := h.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := dw.WritePacket(info.Timestamp, data, info.OrigLen); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := dw.Flush(); err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("read %d packets, want 300", n)
	}
	if st := h.Stats(); st.Received != 300 || st.Filtered != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// The re-dumped trace is truncated to 76 bytes.
	h2, err := OpenOffline(&out)
	if err != nil {
		t.Fatal(err)
	}
	info, data, err := h2.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 76 || info.OrigLen < len(data) {
		t.Fatalf("truncation broken: caplen %d orig %d", len(data), info.OrigLen)
	}
}

func TestOfflineFilterRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := SynthesizeTrace(&buf, 100, 7, 0); err != nil {
		t.Fatal(err)
	}
	h, err := OpenOffline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetFilter("tcp"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.ReadPacket(); err != io.EOF {
		t.Fatalf("tcp filter over UDP trace returned %v, want EOF", err)
	}
	if st := h.Stats(); st.Filtered != 100 {
		t.Fatalf("filtered = %d, want 100", st.Filtered)
	}
}

func TestMWNDistributionFacade(t *testing.T) {
	d, err := MWNDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Mean(); m < 600 || m > 700 {
		t.Fatalf("mean = %.1f", m)
	}
}

func TestBadFilterExpr(t *testing.T) {
	h := &Handle{snaplen: 96}
	if err := h.SetFilter("syntactically (wrong"); err == nil {
		t.Fatal("bad filter accepted")
	}
	if err := h.SetFilterProgram(nil); err == nil {
		t.Fatal("nil program accepted")
	}
}
