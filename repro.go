// Package repro is the public API of the reproduction of "Performance
// evaluation of packet capturing systems for high-speed networks"
// (Fabian Schneider, TU München, 2005).
//
// The package bundles three things:
//
//   - The measurement study: the four systems under test (swan, snipe,
//     moorhen, flamingo), the enhanced Linux Kernel Packet Generator with
//     empirical packet-size distributions, and the full measurement cycle.
//     Every table and figure of the thesis is runnable via Experiments.
//
//   - The capture-system simulation: structural models of the FreeBSD BPF
//     and Linux PF_PACKET stacks on Opteron and Xeon machines
//     (internal/capture), driven through Run and Sweep.
//
//   - The offline tooling: a libpcap-style Handle over pcap files with
//     BPF filtering (the createDist/tcpdump-style tools in cmd/ build on
//     it), the filter-expression compiler, and the trace synthesizer.
//
// Quick start:
//
//	w := repro.Workload{Packets: 100_000, TargetRate: 800e6, Seed: 1}
//	stats := repro.Run(repro.Moorhen(), w)
//	fmt.Printf("captured %.2f%% at %.0f%% CPU\n",
//	    stats.CaptureRate(), stats.CPUUsage())
package repro

import (
	"context"

	"repro/internal/bpf"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/filter"
	"repro/internal/pkt"
	"repro/internal/pktgen"
	"repro/internal/trace"
)

// Config describes one system under test; see the field documentation in
// the underlying type for every knob (CPUs, buffers, filter, load, ...).
type Config = capture.Config

// Stats is the outcome of one measurement run.
type Stats = capture.Stats

// AppLoad configures the artificial per-packet load of the capturing
// application (memcpys, zlib, disk writes, pipe-to-gzip).
type AppLoad = capture.AppLoad

// Costs exposes the calibrated kernel-path cost model for ablations.
type Costs = capture.Costs

// Workload describes a generated packet train (count, rate, seed).
type Workload = core.Workload

// PolicySpec configures a per-application sampling / load-shedding
// policy (Config.Policy): uniform 1-in-N, whole-flow 1-in-N, or
// adaptive queue-depth feedback. The zero value keeps every packet.
type PolicySpec = capture.PolicySpec

// ParsePolicy parses a policy spec: "none", "uniform:N", "flow:N",
// "adaptive[:T]".
func ParsePolicy(s string) (PolicySpec, error) { return capture.ParsePolicy(s) }

// FairnessIndex returns Jain's fairness index over per-application
// capture counts (1.0 = equal shares; defined as 1.0 for the all-zero
// column).
func FairnessIndex(captured []uint64) float64 { return capture.FairnessIndex(captured) }

// Operating systems of the study.
const (
	Linux   = capture.Linux
	FreeBSD = capture.FreeBSD
)

// The four systems of the thesis (Figure 2.4).
var (
	Swan     = core.Swan     // Linux / dual AMD Opteron
	Snipe    = core.Snipe    // Linux / dual Intel Xeon
	Moorhen  = core.Moorhen  // FreeBSD 5.4 / dual AMD Opteron
	Flamingo = core.Flamingo // FreeBSD 5.4 / dual Intel Xeon
)

// The modern 10/40/100G systems (EXPERIMENTS.md, "Modern capture
// stacks"): RSS multi-queue NICs feeding three receive architectures.
var (
	Heron  = core.Heron  // Linux NAPI + per-packet copies, 8 cores
	Osprey = core.Osprey // poll-mode (busy-spin PMD cores), PCIe 4.0 host
	Kite   = core.Kite   // AF_XDP-style zero copy over a shared UMEM
)

// Sniffers returns all four systems in plotting order.
func Sniffers() []Config { return core.Sniffers() }

// ModernSniffers returns the three modern systems in plotting order.
func ModernSniffers() []Config { return core.ModernSniffers() }

// Run executes one measurement run of one system (time-compressing OS
// constants and buffers for short workloads) and returns its statistics.
func Run(cfg Config, w Workload) Stats { return core.RunOnce(cfg, w) }

// Series and Point are sweep results (one line of a thesis plot).
type (
	Series = core.Series
	Point  = core.Point
)

// Sweep runs the §3.4 measurement cycle over the given data rates
// (Mbit/s) with reps repetitions per point.
func Sweep(cfgs []Config, ratesMbit []float64, w Workload, reps int) []Series {
	return core.SweepRates(cfgs, ratesMbit, w, reps)
}

// SweepParallel is Sweep with the independent measurement cells — one per
// (system, rate, repetition) — distributed over a worker pool: workers 0
// runs serially, negative uses one worker per CPU. Each generated train is
// recorded once and replayed into every system (the optical splitter of
// the testbed), and the output is byte-identical to Sweep for any worker
// count.
func SweepParallel(cfgs []Config, ratesMbit []float64, w Workload, reps, workers int) []Series {
	return core.SweepRatesParallel(context.Background(), cfgs, ratesMbit, w, reps, workers)
}

// FormatTable renders sweep results as the thesis-style table.
func FormatTable(title string, s []Series) string { return core.FormatTable(title, s) }

// Experiment is one table/figure of the thesis's evaluation.
type Experiment = experiments.Experiment

// ExperimentOptions control experiment fidelity.
type ExperimentOptions = experiments.Options

// Experiments returns every reproduced table and figure.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment runs one experiment by its id (e.g. "fig6.3-smp").
func RunExperiment(id string, o ExperimentOptions) (string, error) {
	e, err := experiments.Find(id)
	if err != nil {
		return "", err
	}
	return e.Run(o), nil
}

// CompileFilter compiles a tcpdump-style expression to a classic BPF
// program. snaplen bounds the accepted capture length (0 = 65535).
func CompileFilter(expr string, snaplen uint32) (bpf.Program, error) {
	return filter.Compile(expr, snaplen)
}

// ReferenceFilter is the 50-instruction measurement filter of Figure 6.5.
const ReferenceFilter = filter.ReferenceFilterExpr

// Generator is the enhanced Linux Kernel Packet Generator.
type Generator = pktgen.Generator

// NewGenerator returns a generator with the thesis defaults, seeded for a
// reproducible packet train.
func NewGenerator(seed uint64) *Generator { return pktgen.New(seed) }

// Distribution is a two-stage packet-size distribution.
type Distribution = dist.Distribution

// MWNDistribution returns the measurement distribution: the two-stage
// representation of the synthetic 24h MWN trace shape.
func MWNDistribution() (*Distribution, error) {
	return dist.Build(trace.MWNCounts(1_000_000), dist.DefaultParams())
}

// SynthesizeTrace writes an n-packet pcap trace with the MWN size
// distribution; see internal/trace.Synthesize.
var SynthesizeTrace = trace.Synthesize

// FormatPacket renders one frame as a tcpdump-style one-liner (timestamp,
// addresses, protocol, flags, length). A zero timestamp is omitted.
var FormatPacket = pkt.Format
