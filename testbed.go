package repro

import (
	"time"

	"repro/internal/flows"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Testbed is the complete Figure 3.1 measurement infrastructure: the
// generator host, the monitoring switch with SNMP counters, the optical
// splitter and the four sniffers, driven by the §3.4 measurement cycle.
type Testbed = testbed.Testbed

// Measurement aggregates repeated testbed cycles.
type Measurement = testbed.Measurement

// NewTestbed creates a testbed with the four thesis sniffers and the
// given workload. Set ProfileInterval to enable cpusage sampling.
func NewTestbed(w Workload) *Testbed { return testbed.New(w) }

// ProfileEveryHalfSecond is the cpusage default sampling interval, for use
// as Testbed.ProfileInterval (it is time-compressed with the workload).
const ProfileEveryHalfSecond = 500 * sim.Millisecond

// FlowTable accounts captured packets per flow (the NIDS-style consumer
// the thesis motivates). bidirectional folds both directions of a
// connection into one flow.
type FlowTable = flows.Table

// NewFlowTable creates an empty flow table.
func NewFlowTable(bidirectional bool) *FlowTable { return flows.New(bidirectional) }

// ObserveFlow is a convenience wrapper: account one captured frame.
func ObserveFlow(t *FlowTable, ts time.Time, frame []byte) { t.Observe(ts, frame) }
