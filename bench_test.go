package repro

import (
	"io"
	"testing"

	"repro/internal/bpf"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/filter"
	"repro/internal/pktgen"
	"repro/internal/trace"
)

// Each thesis table/figure has one benchmark that regenerates its series
// (at reduced fidelity; run cmd/experiment for full sweeps). Use
// `go test -bench . -v` to also print the regenerated tables.

func benchOptions() experiments.Options {
	return experiments.Options{
		Packets: 6000,
		Reps:    1,
		Seed:    1,
		Rates:   []float64{200, 500, 800, 950},
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = e.Run(o)
	}
	b.StopTimer()
	if testing.Verbose() {
		b.Logf("%s (%s)\n%s", e.Title, e.Paper, out)
	}
	if len(out) == 0 {
		b.Fatal("experiment produced no output")
	}
}

// --- Chapter 4: workload generation --------------------------------------

func BenchmarkFig41SizeHistogram(b *testing.B)     { benchExperiment(b, "fig4.1") }
func BenchmarkFig42TopSizes(b *testing.B)          { benchExperiment(b, "fig4.2") }
func BenchmarkFig43GeneratorFidelity(b *testing.B) { benchExperiment(b, "fig4.3") }
func BenchmarkGenRateBySize(b *testing.B)          { benchExperiment(b, "gen-rate") }

// --- Chapter 6: measurements ----------------------------------------------

func BenchmarkFig62BaselineNoSMP(b *testing.B)      { benchExperiment(b, "fig6.2-nosmp") }
func BenchmarkFig62BaselineSMP(b *testing.B)        { benchExperiment(b, "fig6.2-smp") }
func BenchmarkFig63BigBuffersNoSMP(b *testing.B)    { benchExperiment(b, "fig6.3-nosmp") }
func BenchmarkFig63BigBuffersSMP(b *testing.B)      { benchExperiment(b, "fig6.3-smp") }
func BenchmarkFig64BufferSweepNoSMP(b *testing.B)   { benchExperiment(b, "fig6.4-nosmp") }
func BenchmarkFig64BufferSweepSMP(b *testing.B)     { benchExperiment(b, "fig6.4-smp") }
func BenchmarkFig66FilterNoSMP(b *testing.B)        { benchExperiment(b, "fig6.6-nosmp") }
func BenchmarkFig66FilterSMP(b *testing.B)          { benchExperiment(b, "fig6.6-smp") }
func BenchmarkFig67TwoApps(b *testing.B)            { benchExperiment(b, "fig6.7") }
func BenchmarkFig68FourApps(b *testing.B)           { benchExperiment(b, "fig6.8") }
func BenchmarkFig69EightApps(b *testing.B)          { benchExperiment(b, "fig6.9") }
func BenchmarkFig610MemcpyNoSMP(b *testing.B)       { benchExperiment(b, "fig6.10-nosmp") }
func BenchmarkFig610MemcpySMP(b *testing.B)         { benchExperiment(b, "fig6.10-smp") }
func BenchmarkFigB2Memcpy25(b *testing.B)           { benchExperiment(b, "figB.2") }
func BenchmarkFig611GzwriteNoSMP(b *testing.B)      { benchExperiment(b, "fig6.11-nosmp") }
func BenchmarkFig611GzwriteSMP(b *testing.B)        { benchExperiment(b, "fig6.11-smp") }
func BenchmarkFigB3Gzwrite9(b *testing.B)           { benchExperiment(b, "figB.3") }
func BenchmarkFig612PipeGzip(b *testing.B)          { benchExperiment(b, "fig6.12") }
func BenchmarkFig613DiskSpeed(b *testing.B)         { benchExperiment(b, "fig6.13") }
func BenchmarkFig614HeaderToDiskNoSMP(b *testing.B) { benchExperiment(b, "fig6.14-nosmp") }
func BenchmarkFig614HeaderToDiskSMP(b *testing.B)   { benchExperiment(b, "fig6.14-smp") }
func BenchmarkFig615MmapNoSMP(b *testing.B)         { benchExperiment(b, "fig6.15-nosmp") }
func BenchmarkFig615MmapSMP(b *testing.B)           { benchExperiment(b, "fig6.15-smp") }
func BenchmarkFig616Hyperthreading(b *testing.B)    { benchExperiment(b, "fig6.16") }
func BenchmarkFigB1OSVersion(b *testing.B)          { benchExperiment(b, "figB.1") }
func BenchmarkSelfSimilarAblation(b *testing.B)     { benchExperiment(b, "selfsim") }

// --- §7.2 future-work extensions and model ablations ----------------------

func BenchmarkExtPFRing(b *testing.B)        { benchExperiment(b, "ext-pfring") }
func BenchmarkExtBSDMmap(b *testing.B)       { benchExperiment(b, "ext-bsdmmap") }
func BenchmarkExtWorkerThreads(b *testing.B) { benchExperiment(b, "ext-workers") }
func BenchmarkExt10GbE(b *testing.B)         { benchExperiment(b, "ext-10gbe") }
func BenchmarkExtProductionDay(b *testing.B) { benchExperiment(b, "ext-production") }
func BenchmarkExtModeration(b *testing.B)    { benchExperiment(b, "ext-moderation") }
func BenchmarkAblHousekeeping(b *testing.B)  { benchExperiment(b, "abl-housekeeping") }
func BenchmarkAblFSBContention(b *testing.B) { benchExperiment(b, "abl-contention") }

func BenchmarkExtModern(b *testing.B) { benchExperiment(b, "ext-modern") }

// --- microbenchmarks of the building blocks -------------------------------

func BenchmarkBPFRunReferenceFilter(b *testing.B) {
	prog := filter.MustCompile(filter.ReferenceFilterExpr, 1515)
	g := pktgen.New(1)
	g.Config.PktSize = 660
	p, _ := g.Next()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prog.Run(p.Data)
		if err != nil || res.Accept == 0 {
			b.Fatal("filter rejected the generated packet")
		}
	}
}

func BenchmarkFilterCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := filter.Compile(filter.ReferenceFilterExpr, 1515); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistSample(b *testing.B) {
	d, err := dist.Build(trace.MWNCounts(1_000_000), dist.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := dist.NewRNG(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += d.Sample(rng)
	}
	_ = sink
}

func BenchmarkPktgenNext(b *testing.B) {
	d, err := dist.Build(trace.MWNCounts(1_000_000), dist.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	g := pktgen.New(1)
	g.LoadDistribution(d)
	g.Config.Count = 0 // unlimited
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("generator stopped")
		}
	}
}

// BenchmarkSweepSerial vs BenchmarkSweepParallel document the speedup of
// the parallel sweep engine. Both run the identical cell set (4 systems ×
// 4 rates × 2 reps); the parallel variant uses one worker per CPU. The
// output tables are byte-identical (see TestParallelSweepDeterminism).
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	cfgs := Sniffers()
	w := Workload{Packets: 4000, Seed: 1}
	rates := []float64{200, 500, 800, 950}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := SweepParallel(cfgs, rates, w, 2, workers)
		if len(s) != 4 {
			b.Fatalf("got %d series", len(s))
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 0) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, -1) }

func BenchmarkSimulatedCaptureRun(b *testing.B) {
	w := Workload{Packets: 5000, TargetRate: 800e6, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := Run(Moorhen(), w)
		if st.Generated == 0 {
			b.Fatal("no packets")
		}
	}
}

// BenchmarkPollModeCaptureRun exercises the batched poll-mode path at a
// multi-gigabit rate: busy-spin PMD cores, RSS ring service in bursts,
// zero-copy app ring reads. Tier-1 in the bench gate — the idle-poll
// loop makes event volume sensitive to scheduler regressions.
func BenchmarkPollModeCaptureRun(b *testing.B) {
	w := Workload{Packets: 5000, TargetRate: 25000e6, Seed: 1,
		Flows: 256, LineRate: 100e9, GenCostNS: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := Run(Osprey(), w)
		if st.Generated == 0 {
			b.Fatal("no packets")
		}
	}
}

func BenchmarkPcapRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf nopBuffer
		if err := SynthesizeTrace(&buf, 200, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineFilterScan(b *testing.B) {
	var trc memBuffer
	if err := SynthesizeTrace(&trc, 2000, 1, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(trc.data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := OpenOffline(&readerOf{data: trc.data})
		if err != nil {
			b.Fatal(err)
		}
		if err := h.SetFilter("udp and len > 100"); err != nil {
			b.Fatal(err)
		}
		for {
			if _, _, err := h.ReadPacket(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBPFValidate(b *testing.B) {
	prog := filter.MustCompile(filter.ReferenceFilterExpr, 1515)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bpf.Program(prog).Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// nopBuffer discards writes but counts them.
type nopBuffer struct{ n int }

func (b *nopBuffer) Write(p []byte) (int, error) { b.n += len(p); return len(p), nil }

// memBuffer collects writes.
type memBuffer struct{ data []byte }

func (b *memBuffer) Write(p []byte) (int, error) { b.data = append(b.data, p...); return len(p), nil }

// readerOf reads from a byte slice (bytes.Reader without the import).
type readerOf struct {
	data []byte
	off  int
}

func (r *readerOf) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
