// multiapp-fairness: several tools capturing the same link at once.
//
// Reproduces the §6.3.3 comparison: FreeBSD's per-attachment double
// buffers give every application nearly the same share (±5 %), while
// Linux under overload serves applications very unevenly and eventually
// collapses (Figures 6.7–6.9).
//
//	go run ./examples/multiapp-fairness
package main

import (
	"fmt"

	"repro"
)

func main() {
	w := repro.Workload{Packets: 60_000, TargetRate: 900e6, Seed: 1}
	for _, napps := range []int{2, 4, 8} {
		fmt.Printf("\n=== %d concurrent capturing applications at 900 Mbit/s ===\n", napps)
		for _, base := range []repro.Config{repro.Swan(), repro.Moorhen()} {
			cfg := base
			cfg.NumCPUs = 2
			cfg.NumApps = napps
			if cfg.OS == repro.Linux {
				cfg.BufferBytes = 128 << 20
			} else {
				cfg.BufferBytes = 10 << 20
			}
			st := repro.Run(cfg, w)
			fmt.Printf("%-8s (%v): per-app %%:", cfg.Name, cfg.OS)
			for _, c := range st.AppCaptured {
				fmt.Printf(" %6.2f", float64(c)/float64(st.Generated)*100)
			}
			worst, avg, best := st.AppRates()
			fmt.Printf("   [worst %.1f avg %.1f best %.1f fair %.3f]\n",
				worst, avg, best, st.Fairness())
		}
	}
	fmt.Println("\n'fair' is Jain's fairness index over the per-app capture counts:")
	fmt.Println("1.0 = every application got the same share, 1/n = one app starved")
	fmt.Println("the rest (defined as 1.0 when every app captured zero: nothing was")
	fmt.Println("shared unevenly).")
	fmt.Println("\nThesis §6.3.3: \"one should avoid using multiple capturing")
	fmt.Println("applications simultaneously\" — Linux' capturing rate \"drops")
	fmt.Println("nearly to zero when the system is under overload\", FreeBSD")
	fmt.Println("\"shares resources more evenly between the applications\".")
}
