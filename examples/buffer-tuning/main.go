// buffer-tuning: how large should the kernel capture buffers be?
//
// The thesis's §6.3.1 answer is nuanced: Linux benefits massively from a
// 128 MB receive buffer, while FreeBSD in single-CPU mode gets *worse*
// with oversized double buffers (the whole HOLD buffer is copied to user
// space in one read, thrashing the cache). This example sweeps the buffer
// size at the top data rate, like Figure 6.4.
//
//	go run ./examples/buffer-tuning
package main

import (
	"fmt"

	"repro"
)

func main() {
	w := repro.Workload{Packets: 50_000, TargetRate: 980e6, Seed: 1}
	systems := []repro.Config{repro.Swan(), repro.Moorhen(), repro.Flamingo()}

	for _, ncpu := range []int{1, 2} {
		fmt.Printf("\n=== %d CPU(s), top data rate ===\n", ncpu)
		fmt.Printf("%-10s", "buffer kB")
		for _, s := range systems {
			fmt.Printf("  %10s", s.Name)
		}
		fmt.Println()
		for kb := 256; kb <= 262144; kb *= 4 {
			fmt.Printf("%-10d", kb)
			for _, base := range systems {
				cfg := base
				cfg.NumCPUs = ncpu
				if cfg.OS == repro.Linux {
					cfg.BufferBytes = kb << 10
				} else {
					cfg.BufferBytes = kb << 10 / 2 // double buffer: halves
				}
				st := repro.Run(cfg, w)
				fmt.Printf("  %9.2f%%", st.CaptureRate())
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThesis §6.3.1: \"10 Mbytes for the double buffer of FreeBSD and")
	fmt.Println("128 Mbytes for the Linux packet receive buffer have proven to be")
	fmt.Println("a good choice\" — and \"it is necessary to be careful about")
	fmt.Println("arbitrarily increasing buffer sizes.\"")
}
