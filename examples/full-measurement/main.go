// full-measurement drives the complete Chapter 3 methodology: the
// generator behind the monitoring switch, SNMP counters as ground truth,
// the optical splitter feeding all four sniffers, cpusage profiling on
// every box, and several repetitions of the measurement cycle — the whole
// super.sh / start.sh / stop.sh choreography of §3.4 in one program.
//
//	go run ./examples/full-measurement
package main

import (
	"fmt"

	"repro"
)

func main() {
	tb := repro.NewTestbed(repro.Workload{
		Packets:    30_000,
		TargetRate: 850e6,
		Seed:       1,
	})
	tb.ProfileInterval = repro.ProfileEveryHalfSecond

	const reps = 3 // the thesis uses seven
	m, err := tb.RunMeasurement(reps)
	if err != nil {
		panic(err)
	}

	fmt.Printf("=== %d repetitions at 850 Mbit/s ===\n", reps)
	fmt.Print(m.Report())

	fmt.Println("\n=== aggregated capture rates (min/avg/max over repetitions) ===")
	rates := m.CaptureRates()
	for _, name := range []string{"swan", "snipe", "moorhen", "flamingo"} {
		min, max, sum := 200.0, -1.0, 0.0
		for _, r := range rates[name] {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
			sum += r
		}
		fmt.Printf("%-9s min %6.2f%%  avg %6.2f%%  max %6.2f%%\n",
			name, min, sum/float64(len(rates[name])), max)
	}

	fmt.Println("\n=== trimmed cpusage averages of the last repetition ===")
	last := m.Runs[len(m.Runs)-1]
	for _, s := range last.Sniffers {
		u := s.UsageAvg
		fmt.Printf("%-9s user %5.1f%%  sys %5.1f%%  softirq %5.1f%%  intr %5.1f%%  idle %5.1f%%\n",
			s.Name, u.User, u.Sys, u.Soft, u.Intr, u.Idle)
	}

	c := tb.Switch.ReadSNMP()
	fmt.Printf("\nswitch SNMP totals: %d packets, %d octets forwarded to the splitter\n",
		c.OutUcastPkts, c.OutOctets)
}
