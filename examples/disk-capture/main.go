// disk-capture: pulling traces to disk, on the simulated testbed and on a
// real pcap file.
//
// Part 1 reproduces §6.3.5: none of the RAID sets writes at line speed, so
// the thesis stores only the first 76 bytes of each packet — which is
// nearly free — while full-packet writes stall the capture tool.
//
// Part 2 uses the offline API: synthesize an MWN-shaped trace, then read
// it back with a filter and write a 76-byte header trace, exactly what
// cmd/capture does.
//
//	go run ./examples/disk-capture
package main

import (
	"bytes"
	"fmt"
	"io"

	"repro"
)

func main() {
	// Part 1: simulated systems writing to disk at 900 Mbit/s.
	w := repro.Workload{Packets: 50_000, TargetRate: 900e6, Seed: 1}
	fmt.Println("system      none%   hdr76%   full%")
	for _, base := range repro.Sniffers() {
		cfg := base
		cfg.NumCPUs = 2
		if cfg.OS == repro.Linux {
			cfg.BufferBytes = 128 << 20
		} else {
			cfg.BufferBytes = 10 << 20
		}
		none := repro.Run(cfg, w)
		hdr := cfg
		hdr.Load = repro.AppLoad{WriteSnapLen: 76}
		hdrSt := repro.Run(hdr, w)
		full := cfg
		full.Load = repro.AppLoad{WriteFull: true}
		fullSt := repro.Run(full, w)
		fmt.Printf("%-10s %6.2f  %7.2f  %6.2f\n",
			cfg.Name, none.CaptureRate(), hdrSt.CaptureRate(), fullSt.CaptureRate())
	}
	fmt.Println("\nThesis §6.3.5: header writes cost almost nothing; the RAID")
	fmt.Println("cannot absorb full packets at line speed.")

	// Part 2: offline header trace with the public pcap API.
	var raw bytes.Buffer
	if err := repro.SynthesizeTrace(&raw, 2000, 7, 0); err != nil {
		panic(err)
	}
	h, err := repro.OpenOffline(bytes.NewReader(raw.Bytes()))
	if err != nil {
		panic(err)
	}
	if err := h.SetFilter("udp and len >= 40"); err != nil {
		panic(err)
	}
	var hdrTrace bytes.Buffer
	dump := repro.NewDumpWriter(&hdrTrace, 76)
	var inBytes, outPkts int
	for {
		info, data, err := h.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		if err := dump.WritePacket(info.Timestamp, data, info.OrigLen); err != nil {
			panic(err)
		}
		inBytes += info.OrigLen
		outPkts++
	}
	if err := dump.Flush(); err != nil {
		panic(err)
	}
	fmt.Printf("\noffline: %d packets, %d wire bytes -> %d bytes of 76-byte header trace (%.1fx smaller)\n",
		outPkts, inBytes, hdrTrace.Len(), float64(inBytes)/float64(hdrTrace.Len()))
}
