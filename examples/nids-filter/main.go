// nids-filter: the intrusion-detection scenario that motivates the thesis.
//
// A NIDS must not lose packets ("if only few packets per connection are
// required, it is exceptionally bad if exactly these packets are lost",
// §1.1) and it usually installs a kernel filter. This example compiles the
// thesis's 50-instruction reference filter, shows the generated BPF
// program, and measures what in-kernel filtering costs each system.
//
//	go run ./examples/nids-filter
package main

import (
	"fmt"
	"strings"

	"repro"
)

func main() {
	prog, err := repro.CompileFilter(repro.ReferenceFilter, 1515)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Figure 6.5 filter compiles to %d BPF instructions (thesis: 50):\n\n", len(prog))
	// Show the head and tail of the program like tcpdump -d would.
	lines := strings.Split(strings.TrimRight(prog.String(), "\n"), "\n")
	for _, l := range lines[:6] {
		fmt.Println(l)
	}
	fmt.Printf("  ... %d address comparisons ...\n", len(lines)-8)
	for _, l := range lines[len(lines)-2:] {
		fmt.Println(l)
	}

	w := repro.Workload{Packets: 50_000, TargetRate: 900e6, Seed: 1}
	fmt.Println("\nsystem      no-filter%   filtered%   extra CPU%")
	for _, base := range repro.Sniffers() {
		cfg := base
		cfg.NumCPUs = 2
		if cfg.OS == repro.Linux {
			cfg.BufferBytes = 128 << 20
		} else {
			cfg.BufferBytes = 10 << 20
		}
		plain := repro.Run(cfg, w)
		cfg.Filter = prog
		filtered := repro.Run(cfg, w)
		fmt.Printf("%-10s  %9.2f  %10.2f  %10.1f\n",
			cfg.Name, plain.CaptureRate(), filtered.CaptureRate(),
			filtered.CPUUsage()-plain.CPUUsage())
	}
	fmt.Println("\nThesis §6.3.2: \"using BPF filters is cheap with respect to the")
	fmt.Println("possible benefit of filtering out unwanted packets.\"")
}
