// Quickstart: measure the four systems of the thesis at one data rate.
//
// This is the minimal use of the public API: build the systems, define a
// workload (packet count, target rate, seed), run, and read the capturing
// rate — the thesis's headline metric — plus CPU usage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	w := repro.Workload{
		Packets:    50_000, // the thesis uses 1M per run; 50k time-compresses it
		TargetRate: 800e6,  // 800 Mbit/s on the wire
		Seed:       1,
	}
	fmt.Println("system     OS       CPUs  capture%   CPU%")
	for _, cfg := range repro.Sniffers() {
		for _, ncpu := range []int{1, 2} {
			c := cfg
			c.NumCPUs = ncpu
			// The buffer sizes the thesis settles on (§6.3.1).
			if c.OS == repro.Linux {
				c.BufferBytes = 128 << 20
			} else {
				c.BufferBytes = 10 << 20
			}
			st := repro.Run(c, w)
			fmt.Printf("%-10s %-8v %4d  %7.2f  %6.1f\n",
				c.Name, c.OS, ncpu, st.CaptureRate(), st.CPUUsage())
		}
	}
	fmt.Println("\nExpected shape (thesis §7.1): FreeBSD/Opteron (moorhen) loses")
	fmt.Println("(nearly) nothing; FreeBSD/Xeon (flamingo) is the weakest link.")
}
